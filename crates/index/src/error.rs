//! Typed errors surfaced by the fallible (`try_*`) index entry points.

use peb_storage::IoFault;

/// Why a fallible index operation could not complete.
///
/// Today the only source is the storage layer: an unresolvable media
/// fault ([`IoFault`]) that the buffer pool's retry/read-repair machinery
/// could not hide — transient retries exhausted, a permanently bad
/// sector, or detected corruption with no WAL post-image to repair from
/// (non-durable pools cannot repair at all). The enum leaves room for
/// future non-I/O failure classes without breaking callers.
///
/// The error chains: [`std::error::Error::source`] walks down to the
/// underlying fault, so generic error reporters see the full story.
///
/// ```
/// use std::error::Error;
/// use peb_index::IndexError;
/// use peb_storage::{IoFault, PageId};
///
/// let err = IndexError::from(IoFault::BadSector { pid: PageId(7) });
/// assert_eq!(err.to_string(), "index I/O error: bad sector at page 7");
/// let fault = err.source().expect("the fault is the source");
/// assert_eq!(fault.to_string(), "bad sector at page 7");
/// assert!(fault.source().is_none(), "the fault is the root cause");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexError {
    /// An unresolvable media fault from the storage layer.
    Io(IoFault),
}

impl From<IoFault> for IndexError {
    fn from(fault: IoFault) -> Self {
        IndexError::Io(fault)
    }
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::Io(fault) => write!(f, "index I/O error: {fault}"),
        }
    }
}

impl std::error::Error for IndexError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IndexError::Io(fault) => Some(fault),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_storage::PageId;

    #[test]
    fn wraps_and_displays_the_fault() {
        let fault = IoFault::BadSector { pid: PageId(7) };
        let err: IndexError = fault.into();
        assert_eq!(err, IndexError::Io(fault));
        let text = err.to_string();
        assert!(text.contains("index I/O error"), "{text}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
