//! The generic moving-object index core shared by the Bx-tree and the
//! PEB-tree.
//!
//! Both indexes of the paper are the *same machine* — a B+-tree over `u128`
//! keys whose high bits select a rotating time partition (Fig 1), with a
//! per-object current-key map for exact update/delete and a label-timestamp
//! map per live partition — differing **only** in how a key is composed
//! from a partition id, a Z-curve value and a user id:
//!
//! ```text
//! Bx  key = [TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂
//! PEB key = [TID]₂ ⊕ [SV]₂ ⊕ [ZV]₂ ⊕ [UID]₂
//! ```
//!
//! The shared machinery (space config, time partitioning, `current_key`
//! tracking, partition labels, insert/update/delete, bulk load, partition
//! expiry/rollover, I/O accounting through the
//! [`peb_storage::BufferPool`]) comes in two cores with the same placement
//! logic and query surface; the [`KeyLayout`] trait is the single seam
//! where the two engines differ:
//!
//! * [`ShardedMovingIndex`] — **the production core** both engines run on:
//!   one B+-tree per rotating time partition, each behind its own lock, so
//!   updates to different partitions run in parallel and a batch of
//!   updates merges into each partition's leaves as one sorted run
//!   ([`ShardedMovingIndex::upsert_batch`]). Partition expiry drops a
//!   whole shard tree in O(1).
//! * [`MovingIndex`] — the exclusive-access single-tree core (`&mut self`
//!   updates, every partition in one B+-tree). Simpler to embed and kept
//!   as the unsharded comparison point for benchmarks.
//!
//! `BxTree` is `ShardedMovingIndex<BxKeyLayout>` and `PebTree` is
//! `ShardedMovingIndex<PebIndexLayout>` plus the privacy context — neither
//! re-implements any of the shared paths.

#![warn(missing_docs)]

pub mod error;
pub mod layout;
pub mod moving;
pub mod partition;
pub mod record;
pub mod shard;

pub use error::IndexError;
pub use layout::KeyLayout;
pub use moving::{IndexStats, MovingIndex};
pub use partition::TimePartitioning;
pub use record::ObjectRecord;
pub use shard::{ScanReport, ShardedMovingIndex};
