//! The generic moving-object index core shared by the Bx-tree and the
//! PEB-tree.
//!
//! Both indexes of the paper are the *same machine* — a B+-tree over `u128`
//! keys whose high bits select a rotating time partition (Fig 1), with a
//! per-object current-key map for exact update/delete and a label-timestamp
//! map per live partition — differing **only** in how a key is composed
//! from a partition id, a Z-curve value and a user id:
//!
//! ```text
//! Bx  key = [TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂
//! PEB key = [TID]₂ ⊕ [SV]₂ ⊕ [ZV]₂ ⊕ [UID]₂
//! ```
//!
//! [`MovingIndex`] owns everything that is identical (B+-tree handle, space
//! config, time partitioning, `current_key` tracking, partition labels,
//! insert/update/delete, bulk load, partition expiry/rollover, I/O
//! accounting through the [`peb_storage::BufferPool`]); the [`KeyLayout`]
//! trait is the single seam where the two engines differ. `BxTree` is
//! `MovingIndex<BxKeyLayout>` and `PebTree` is `MovingIndex<PebIndexLayout>`
//! plus the privacy context — neither re-implements any of the shared
//! paths, which is what future sharding/batching work hangs off.

pub mod layout;
pub mod moving;
pub mod partition;
pub mod record;

pub use layout::KeyLayout;
pub use moving::{IndexStats, MovingIndex};
pub use partition::TimePartitioning;
pub use record::ObjectRecord;
