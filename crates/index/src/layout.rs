//! The key-composition seam between the shared [`crate::MovingIndex`]
//! machinery and a concrete engine (Bx or PEB).

/// How a concrete engine packs `(partition, Z-value, user)` into the one
/// `u128` index key of an object.
///
/// The layout may fold in additional per-user components — the PEB-tree's
/// layout inserts the policy sequence value `SV` between `TID` and `ZV`,
/// looked up from its privacy context by `uid` — as long as two invariants
/// hold, which the `MovingIndex` update/expiry paths rely on:
///
/// 1. **Partition dominance**: for fixed layout state, keys of partition
///    `tid` all sort inside `partition_range(tid)`, and ranges of distinct
///    partitions are disjoint.
/// 2. **Uid injectivity**: for fixed `(tid, zv)` and layout state, distinct
///    uids yield distinct keys (keys are unique in the B+-tree).
pub trait KeyLayout {
    /// Bits of the Z-curve value carried by a key (2 × grid bits per axis).
    fn zv_bits(&self) -> u32;

    /// Compose the full key of object `uid`, whose predicted position at
    /// the partition's label timestamp encodes to `zv`, in partition `tid`.
    fn key(&self, tid: u8, zv: u64, uid: u64) -> u128;

    /// Inclusive `(lowest, highest)` key bounds of partition `tid`, over
    /// every other key component. Used for partition-wide scans (expiry /
    /// rollover migration).
    fn partition_range(&self, tid: u8) -> (u128, u128);

    /// Mask `zv` to the bits the key can carry. Positions are grid-clamped
    /// upstream, so this is a safety net for out-of-domain encodes.
    #[inline]
    fn mask_zv(&self, zv: u64) -> u64 {
        zv & ((1u64 << self.zv_bits()) - 1)
    }
}
