//! Bx-tree time partitioning (Fig 1 and Eq. 2 of the paper).
//!
//! The time axis is divided into phases of length `∆tmu / n`. An update at
//! time `tu` is indexed as of the *nearest later label timestamp*
//! `t_lab = ⌈tu + ∆tmu/n⌉_l`, and the label maps to one of `n + 1` rotating
//! index partitions: `TID = (t_lab / (∆tmu/n) − 1) mod (n + 1)`. Because an
//! object must update at least every `∆tmu`, at most `n + 1` partitions
//! hold live data at any moment.

use peb_common::Timestamp;

/// The partitioning parameters: maximum update interval `∆tmu` and the
/// number of phases `n` it is split into. The Bx paper's canonical setting
/// (adopted by the PEB paper, Sec 7.1) is `n = 2`.
#[derive(Debug, Clone, Copy)]
pub struct TimePartitioning {
    /// Maximum update interval `∆tmu`: every object must report at least
    /// this often, which is what lets whole partitions expire at once.
    pub delta_tmu: f64,
    /// Number of phases `∆tmu` is split into (`n = 2` in the papers).
    pub n: u32,
}

impl Default for TimePartitioning {
    fn default() -> Self {
        TimePartitioning { delta_tmu: 120.0, n: 2 }
    }
}

impl TimePartitioning {
    /// Partitioning with maximum update interval `delta_tmu` split into
    /// `n >= 1` phases.
    pub fn new(delta_tmu: f64, n: u32) -> Self {
        // Partition ids are u8 everywhere (key layouts pack TID into 8
        // bits), so at most 256 partitions (`n + 1`) can exist.
        assert!(delta_tmu > 0.0 && (1..=255).contains(&n));
        TimePartitioning { delta_tmu, n }
    }

    /// Length of one phase, `∆tmu / n`.
    pub fn phase_len(&self) -> f64 {
        self.delta_tmu / self.n as f64
    }

    /// Number of distinct partition ids, `n + 1`.
    pub fn num_partitions(&self) -> u32 {
        self.n + 1
    }

    /// `⌈tu + ∆tmu/n⌉_l`: the label timestamp an update at `tu` is indexed
    /// as of — the first label at or after `tu + phase_len`.
    pub fn label_timestamp(&self, tu: Timestamp) -> Timestamp {
        let pl = self.phase_len();
        ((tu + pl) / pl).ceil() * pl
    }

    /// Eq. 2: the index partition of a label timestamp.
    pub fn partition_of_label(&self, t_lab: Timestamp) -> u8 {
        let pl = self.phase_len();
        let idx = (t_lab / pl).round() as i64 - 1;
        (idx.rem_euclid(self.num_partitions() as i64)) as u8
    }

    /// Convenience: partition for an update at `tu`.
    pub fn partition_of_update(&self, tu: Timestamp) -> u8 {
        self.partition_of_label(self.label_timestamp(tu))
    }

    /// Every partition id, ascending (`0..n+1`). The sharded index keeps
    /// one shard per id. (Iterates in `u32` and casts each id: at the
    /// maximum `n = 255` there are 256 ids and `0..(256 as u8)` would be
    /// an empty range.)
    pub fn partition_ids(&self) -> impl Iterator<Item = u8> {
        (0..self.num_partitions()).map(|tid| tid as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_phase_one() {
        // "Let the time axis be partitioned into intervals of ∆tmu/2.
        // Objects updated between time 0 and ∆tmu/2 are indexed as of
        // t_lab = ∆tmu. The resulting partition is 1."
        let p = TimePartitioning::new(120.0, 2);
        assert_eq!(p.phase_len(), 60.0);
        for tu in [0.1, 30.0, 59.9] {
            assert_eq!(p.label_timestamp(tu), 120.0);
            assert_eq!(p.partition_of_update(tu), 1);
        }
    }

    #[test]
    fn partition_ids_cover_all_ids_at_maximum_n() {
        // Regression: `0..(256 as u8)` is empty; n = 255 must still yield
        // all 256 ids or the sharded index is built with zero shards.
        let p = TimePartitioning::new(120.0, 255);
        let ids: Vec<u8> = p.partition_ids().collect();
        assert_eq!(ids.len(), 256);
        assert_eq!(ids[0], 0);
        assert_eq!(ids[255], 255);
        assert_eq!(TimePartitioning::new(120.0, 2).partition_ids().count(), 3);
    }

    #[test]
    fn partitions_rotate_mod_n_plus_one() {
        let p = TimePartitioning::new(120.0, 2);
        assert_eq!(p.num_partitions(), 3);
        // Labels 60, 120, 180, 240, 300 -> partitions 0, 1, 2, 0, 1.
        assert_eq!(p.partition_of_label(60.0), 0);
        assert_eq!(p.partition_of_label(120.0), 1);
        assert_eq!(p.partition_of_label(180.0), 2);
        assert_eq!(p.partition_of_label(240.0), 0);
        assert_eq!(p.partition_of_label(300.0), 1);
    }

    #[test]
    fn label_is_strictly_later_than_update() {
        let p = TimePartitioning::new(120.0, 2);
        for i in 0..1000 {
            let tu = i as f64 * 0.37;
            let lab = p.label_timestamp(tu);
            assert!(lab > tu, "label {lab} must lie after update {tu}");
            assert!(lab - tu <= p.delta_tmu, "label within one max update interval");
        }
    }

    #[test]
    fn update_exactly_on_phase_boundary() {
        let p = TimePartitioning::new(120.0, 2);
        // tu = 60 -> tu + 60 = 120, already a label: stays 120.
        assert_eq!(p.label_timestamp(60.0), 120.0);
        assert_eq!(p.label_timestamp(60.0001).round(), 180.0);
    }

    #[test]
    fn single_phase_partitioning() {
        let p = TimePartitioning::new(100.0, 1);
        assert_eq!(p.num_partitions(), 2);
        // tu = 0.5 -> label 200 -> partition (200/100 - 1) mod 2 = 1, and
        // successive phases alternate between the two partitions.
        assert_eq!(p.partition_of_update(0.5), 1);
        assert_eq!(p.partition_of_update(100.5), 0);
        assert_eq!(p.partition_of_update(200.5), 1);
    }
}
