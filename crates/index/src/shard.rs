//! [`ShardedMovingIndex`]: the moving-object index core, sharded by time
//! partition for parallel batched updates.
//!
//! The Bx/PEB design already implies the sharding: the paper's rotating
//! time partitions (Fig 1) are disjoint key ranges that never exchange
//! entries except through an update's delete+insert pair. This type makes
//! the implication structural — **each live partition owns its own
//! B+-tree behind its own lock**, with the `current_key` map split into
//! per-shard maps — so that:
//!
//! * upserts targeting *different* partitions proceed in parallel instead
//!   of serializing on one `&mut` over the whole index;
//! * a batch of updates is applied per partition as one sorted merge into
//!   the leaves ([`ShardedMovingIndex::upsert_batch`], built on
//!   [`peb_btree::BTree::merge_sorted`]);
//! * partition expiry drops a whole shard tree in O(1) instead of deleting
//!   entries one key at a time.
//!
//! Every shard shares one [`BufferPool`], so the paper's I/O accounting
//! keeps flowing through a single set of counters:
//! [`ShardedMovingIndex::io_stats`] is still "the pool's numbers",
//! aggregated across shards by construction. The pool itself may be lock-
//! sharded too ([`BufferPool::sharded`]); its `stats()` sums its own
//! shard-local counters, so the aggregation here is unchanged either way.
//!
//! Lock ordering across the whole stack is strictly downward:
//! **index shard lock → page latch → pool shard lock → WAL lock → disk
//! lock**, never more than one lock of the same level at a time (page
//! latches excepted: an OLC structural write holds its whole latched
//! scope, acquired first-blocking-then-try-only, see `peb_btree::olc`),
//! and never upward — which is what makes the layered locking
//! deadlock-free (see the `peb_storage::pool` module docs for the
//! pool's half of the contract).
//!
//! With [`ShardedMovingIndex::set_olc_writes`] on, same-shard refreshes
//! and removals run their page I/O under the shard **read** lock —
//! per-page latches replace whole-shard exclusion — so single-object
//! writers overlap scans, point reads, and each other; see that
//! method's docs for the exact protocol and the read-committed
//! relaxations it introduces.
//!
//! # Concurrency contract
//!
//! All update methods take `&self` (interior mutability through the
//! per-shard locks). Concurrent calls are safe for **disjoint objects**;
//! two threads upserting the *same* `uid` concurrently race shard-locally
//! (last writer wins per shard, and a cross-partition migration may
//! transiently duplicate the object). Partition the update stream by uid —
//! as [`ShardedMovingIndex::upsert_batch`] does internally — to get
//! deterministic results. Aggregating reads (`len`, `stats`,
//! `live_partitions`) lock shards one at a time and are therefore not
//! atomic snapshots.
//!
//! Multi-shard scans ([`ShardedMovingIndex::scan_keys`]), however, **are
//! migration-consistent**: every update path that re-keys a live object
//! outside a single shard-lock critical section (a cross-partition
//! migration, or a batch's evict-then-merge within one partition) wraps
//! the re-key in a per-index *migration epoch* — a seqlock-style pair of
//! counters bumped when such a span starts and when it completes. A
//! multi-shard scan buffers its result while holding shard locks one at
//! a time, then revalidates the epoch: if a migration span overlapped
//! the scan, the scan retries, and after a bounded number of retries it
//! falls back to waiting out in-flight spans and acquiring **all**
//! intersecting shard locks (in ascending tid order, a superset of every
//! writer's single-lock order, so deadlock-free) for a true snapshot.
//! Such a scan therefore never observes a migrating object twice (old
//! and new entry) nor misses it entirely — the read-committed anomaly
//! documented in PR 2/PR 3 is closed. Two semantics notes: a
//! **single-shard** scan (every interval the query algorithms issue)
//! streams under its one read lock — atomic against cross-shard
//! migrations by construction, but a batch's *same-shard* evict→merge
//! gap can still transiently hide the re-keyed object from it
//! (read-committed, exactly as before this PR); and object *insertions*
//! and *removals* remain read-committed everywhere — a scan racing a
//! brand-new object or a genuine delete may or may not see it, as
//! before.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use peb_btree::{
    coalesce_intervals, BTree, OlcStats, ScanStats, ScanTermination, TreeStats, WriteStats,
};
use peb_common::{sched, Deadline, MovingPoint, Rect, SpaceConfig, Timestamp, UserId};
use peb_storage::{BufferPool, IoFault, IoStats, LockStats, PageId, WalRecovery};
use peb_zorder::encode;

use crate::error::IndexError;
use crate::layout::KeyLayout;
use crate::moving::IndexStats;
use crate::partition::TimePartitioning;
use crate::record::ObjectRecord;

/// One time partition's slice of the index: its own B+-tree, the current
/// keys of the objects living in it, and the label timestamp of the data
/// it stores (`None` while the partition is empty/expired).
struct Shard {
    btree: BTree<ObjectRecord>,
    current_key: HashMap<UserId, u128>,
    label: Option<Timestamp>,
}

impl Shard {
    fn new(pool: &Arc<BufferPool>) -> Self {
        Shard { btree: BTree::new(Arc::clone(pool)), current_key: HashMap::new(), label: None }
    }

    /// Insert/replace one entry through whichever write path the shard
    /// tree is configured for: a direct leaf insert, or (with buffered
    /// writes on) a `Put` message appended to the tree's message buffer.
    /// A media fault on the direct leaf path surfaces typed; the buffered
    /// path stays on the legacy chain append (infallible by design —
    /// flush message buffers before operating on suspect media).
    fn try_put(&mut self, key: u128, rec: ObjectRecord) -> Result<(), IoFault> {
        if self.btree.buffered_writes() {
            self.btree.buffered_insert(key, rec);
            Ok(())
        } else {
            self.btree.try_insert(key, rec).map(|_| ())
        }
    }

    /// Delete one entry through the configured write path (direct leaf
    /// delete, or a `Del` tombstone message under buffered writes).
    fn del(&mut self, key: u128) {
        self.try_del(key).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"));
    }

    /// Fallible twin of [`Shard::del`] (same buffered-path caveat as
    /// [`Shard::try_put`]).
    fn try_del(&mut self, key: u128) -> Result<(), IoFault> {
        if self.btree.buffered_writes() {
            self.btree.buffered_delete(key);
            Ok(())
        } else {
            self.btree.try_delete(key).map(|_| ())
        }
    }

    /// Replace `old` with `(key, rec)` through the configured write path.
    /// Under buffered writes the tombstone and the put ride **one** chain
    /// append — the single-page-touch upsert the buffers exist for.
    /// On `Err` the old entry may already be deleted with the new one not
    /// yet inserted — the caller decides whether the uid's map slot stays
    /// vacated (same buffered-path caveat as [`Shard::try_put`]).
    fn try_replace(&mut self, old: u128, key: u128, rec: ObjectRecord) -> Result<(), IoFault> {
        if self.btree.buffered_writes() {
            self.btree.buffered_upsert(old, key, rec);
            Ok(())
        } else {
            self.btree.try_delete(old)?;
            self.btree.try_insert(key, rec).map(|_| ())
        }
    }
}

/// A moving-object index sharded by rotating time partition (see the
/// module docs). Drop-in core for the Bx-tree and the PEB-tree: identical
/// key placement and query surface as [`crate::MovingIndex`], plus
/// lock-per-partition updates and the batched update path.
pub struct ShardedMovingIndex<L: KeyLayout> {
    /// One shard per partition id, indexed by `tid`.
    shards: Vec<RwLock<Shard>>,
    /// Migration spans *started*: bumped before the first stale-entry
    /// eviction of any re-keying span that is not atomic under a single
    /// shard lock (see the module docs). Together with `mig_done` it
    /// forms the index's migration epoch.
    mig_started: AtomicU64,
    /// Migration spans *completed*: bumped after the span's final insert.
    /// `mig_done == mig_started` means no migration is in flight.
    mig_done: AtomicU64,
    /// Cumulative count of committed mutation calls, the `ops` payload of
    /// every [`peb_storage::WalRecord::Commit`] this index logs. Each
    /// public mutation entry point commits exactly once (even when it
    /// changed nothing), so after a crash the count of the last durable
    /// commit identifies a *prefix of entry-point calls* — what the crash
    /// harness replays on a never-crashed twin. Always 0 while the pool is
    /// not durable.
    ops: AtomicU64,
    layout: L,
    space: SpaceConfig,
    part: TimePartitioning,
    max_speed: f64,
    pool: Arc<BufferPool>,
}

/// Buffered-scan attempts [`ShardedMovingIndex::scan_keys`] makes against
/// the migration epoch before falling back to locking every intersecting
/// shard at once.
const SCAN_EPOCH_RETRIES: usize = 3;

/// What a deadline-bounded scan actually delivered: the overall
/// [`ScanTermination`] plus one `(tid, complete)` entry per time partition
/// the interval set intersected, in the order the scan visited them
/// (ascending key order). A partition is `complete` when every record of
/// its clipped range was handed to the visitor; once the deadline expires
/// (or the visitor stops), the partition it fired in and every later
/// partition report `false`. This is the per-partition completeness tag
/// the serving layer attaches to degraded (partial) query answers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanReport {
    /// How the scan ended: ran to completion, visitor stopped it, or the
    /// deadline expired at a checkpoint.
    pub termination: ScanTermination,
    /// `(tid, complete)` per intersected partition, in visit order.
    pub partitions: Vec<(u8, bool)>,
}

impl ScanReport {
    /// Whether every intersected partition was fully delivered.
    pub fn is_complete(&self) -> bool {
        self.termination == ScanTermination::Complete
    }

    /// How many intersected partitions were fully delivered.
    pub fn complete_partitions(&self) -> usize {
        self.partitions.iter().filter(|(_, c)| *c).count()
    }
}

impl<L: KeyLayout> ShardedMovingIndex<L> {
    /// An empty index with one shard per rotating partition, all sharing
    /// `pool` for I/O accounting.
    pub fn new(
        pool: Arc<BufferPool>,
        layout: L,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
    ) -> Self {
        assert!(max_speed > 0.0);
        let shards = part.partition_ids().map(|_| RwLock::new(Shard::new(&pool))).collect();
        ShardedMovingIndex {
            shards,
            mig_started: AtomicU64::new(0),
            mig_done: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            layout,
            space,
            part,
            max_speed,
            pool,
        }
    }

    /// Bulk-load an initial population (each user must appear once): users
    /// are grouped by target partition and each shard tree is built
    /// bottom-up at the given fill factor.
    pub fn bulk_load(
        pool: Arc<BufferPool>,
        layout: L,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
        users: &[MovingPoint],
        fill: f64,
    ) -> Self {
        let shell = ShardedMovingIndex::new(pool, layout, space, part, max_speed);
        let mut groups: Vec<Vec<(u128, ObjectRecord, UserId)>> =
            (0..shell.shards.len()).map(|_| Vec::new()).collect();
        let mut labels: Vec<Option<Timestamp>> = vec![None; shell.shards.len()];
        for m in users {
            let (key, tid, t_lab) = shell.placement(m);
            groups[tid as usize].push((key, ObjectRecord::from_moving_point(m), m.uid));
            let lab = &mut labels[tid as usize];
            *lab = Some(lab.map_or(t_lab, |l: f64| l.max(t_lab)));
        }
        for (tid, mut group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            group.sort_unstable_by_key(|(k, _, _)| *k);
            let mut s = shell.shards[tid].write();
            s.current_key = group.iter().map(|(k, _, uid)| (*uid, *k)).collect();
            s.label = labels[tid];
            s.btree = BTree::bulk_load(
                Arc::clone(&shell.pool),
                group.into_iter().map(|(k, rec, _)| (k, rec)),
                fill,
            );
        }
        shell
    }

    /// The space configuration keys are quantized against.
    pub fn space(&self) -> &SpaceConfig {
        &self.space
    }

    /// The rotating time-partitioning parameters.
    pub fn partitioning(&self) -> &TimePartitioning {
        &self.part
    }

    /// The declared maximum object speed (drives query enlargement).
    pub fn max_speed(&self) -> f64 {
        self.max_speed
    }

    /// The key layout (the engine seam, shared by every shard).
    pub fn layout(&self) -> &L {
        &self.layout
    }

    /// Mutable access to the layout (e.g. to swap the PEB privacy
    /// context); requires exclusive access to the whole index.
    pub fn layout_mut(&mut self) -> &mut L {
        &mut self.layout
    }

    /// Number of shards (= `n + 1` rotating partitions).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Objects currently indexed, summed across shards. Counted from the
    /// per-shard `current_key` maps, which every update path maintains
    /// synchronously — so the count is exact even while buffered writes
    /// hold messages that have not yet reached the leaves (where the
    /// structural tree length lags until the next flush).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().current_key.len()).sum()
    }

    /// Whether no object is indexed.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().current_key.is_empty())
    }

    /// The buffer pool all shards perform I/O through.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Physical/logical I/O counters — the paper's Sec 7.1 metric. All
    /// index shards share one pool, so this aggregates across index
    /// shards for free; if the pool is itself lock-sharded,
    /// [`BufferPool::stats`] additionally sums the pool-shard counters,
    /// keeping this one ledger exact in every configuration.
    pub fn io_stats(&self) -> IoStats {
        self.pool.stats()
    }

    /// Locking counters of the shared pool ([`BufferPool::lock_stats`]):
    /// how many page touches went lock-free vs through a shard mutex —
    /// the deterministic companion of [`ShardedMovingIndex::io_stats`]
    /// for the optimistic read path.
    pub fn lock_stats(&self) -> LockStats {
        self.pool.lock_stats()
    }

    /// Switch write-ahead logging on or off ([`BufferPool::set_durable`]).
    ///
    /// Turning durability **on** registers every shard tree under its
    /// partition id (so recovery can reattach each tree to its logged
    /// root), seals the pre-durable state under an enrollment commit (the
    /// pool adopted every dirty frame into the log — the commit is what
    /// makes those images replayable), and takes an initial checkpoint,
    /// making the current state the recovery floor. A crash *during*
    /// enrollment — before its first log flush completes — recovers to
    /// the empty pre-durable floor: durability only protects state from
    /// the first durable commit onward. Requires exclusive access, like
    /// every other configuration knob; while durable, the single-writer
    /// contract of the pool's WAL applies — run mutations from one
    /// thread at a time.
    pub fn set_durable(&mut self, on: bool) {
        self.pool.set_durable(on);
        if on {
            for (tid, shard) in self.shards.iter().enumerate() {
                shard.write().btree.set_tree_id(tid as u32);
            }
            self.pool.wal_commit(self.ops.load(Ordering::SeqCst));
            self.checkpoint();
        }
    }

    /// Whether mutations are write-ahead logged.
    pub fn is_durable(&self) -> bool {
        self.pool.is_durable()
    }

    /// Cumulative count of committed mutation calls (0 while not durable).
    pub fn committed_ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Take a fuzzy checkpoint: log every shard tree's `(id, root,
    /// height)`, flush all dirty pages (log-before-page per frame), and
    /// seal the checkpoint so recovery replays only the log tail after
    /// it. Returns the number of pages flushed; a no-op returning 0 when
    /// not durable.
    pub fn checkpoint(&self) -> usize {
        let metas: Vec<(u32, PageId, u32)> = self
            .shards
            .iter()
            .enumerate()
            .map(|(tid, shard)| {
                let s = shard.read();
                (tid as u32, s.btree.root(), s.btree.height())
            })
            .collect();
        self.pool.checkpoint(&metas)
    }

    /// Seal one mutation entry-point call into the log: bump the
    /// cumulative op count and force a durable [`Commit`] record. Called
    /// exactly once per public mutation call — including calls that
    /// changed nothing — so the committed count always names a prefix of
    /// the caller's op sequence. A single relaxed load when not durable.
    ///
    /// [`Commit`]: peb_storage::WalRecord::Commit
    fn commit_op(&self) {
        if self.pool.is_durable() {
            let n = self.ops.fetch_add(1, Ordering::SeqCst) + 1;
            self.pool.wal_commit(n);
        }
    }

    /// Rebuild an index from a recovered pool: the inverse of a crash.
    ///
    /// `recovery` is what [`peb_storage::recover`] returned after
    /// replaying the log against the data disk, and `pool` a
    /// [`BufferPool::from_recovered`] over that disk and the resumed log.
    /// Each shard tree is reattached to its newest committed `(root,
    /// height)` from the log's tree-meta records — walking the restored
    /// pages to recount entries and re-register any buffered message
    /// chains — and the in-memory `current_key` maps and partition labels
    /// are rebuilt from one overlay-aware full scan per shard. The
    /// result answers every read exactly as the pre-crash index did as
    /// of its last durable commit.
    pub fn recover(
        pool: Arc<BufferPool>,
        recovery: &WalRecovery,
        layout: L,
        space: SpaceConfig,
        part: TimePartitioning,
        max_speed: f64,
    ) -> Self {
        assert!(max_speed > 0.0);
        let meta: HashMap<u32, (PageId, u32)> =
            recovery.tree_meta.iter().map(|&(t, r, h)| (t, (r, h))).collect();
        let shards: Vec<RwLock<Shard>> = part
            .partition_ids()
            .map(|tid| {
                let btree = match meta.get(&(tid as u32)) {
                    Some(&(root, height)) => {
                        BTree::reattach(Arc::clone(&pool), tid as u32, root, height)
                    }
                    // No committed meta for this partition (durability was
                    // never enabled on it): start it empty, registered.
                    None => {
                        let mut t = BTree::new(Arc::clone(&pool));
                        t.set_tree_id(tid as u32);
                        t
                    }
                };
                RwLock::new(Shard { btree, current_key: HashMap::new(), label: None })
            })
            .collect();
        let idx = ShardedMovingIndex {
            shards,
            mig_started: AtomicU64::new(0),
            mig_done: AtomicU64::new(0),
            ops: AtomicU64::new(recovery.commits),
            layout,
            space,
            part,
            max_speed,
            pool,
        };
        // Rebuild the volatile maps from the durable state: one
        // overlay-aware scan per shard (buffered messages reattached
        // above are folded in by the scan, so a `Put` still in a chain
        // counts and a tombstoned entry does not). The label is the
        // newest record's label timestamp — exactly what the sequence of
        // upserts that built the shard left behind.
        for (tid, shard) in idx.shards.iter().enumerate() {
            let (plo, phi) = idx.layout.partition_range(tid as u8);
            let mut s = shard.write();
            let mut found: Vec<(UserId, u128, f64)> = Vec::new();
            s.btree.range_scan(plo, phi, |k, rec: ObjectRecord| {
                found.push((UserId(rec.uid), k, rec.t_update as f64));
                true
            });
            for (uid, k, tu) in found {
                s.current_key.insert(uid, k);
                let lab = idx.part.label_timestamp(tu);
                s.label = Some(s.label.map_or(lab, |l: Timestamp| l.max(lab)));
            }
        }
        idx
    }

    /// Leaf pages across all shard trees, `Nl` in the paper's cost model.
    pub fn leaf_page_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().btree.leaf_page_count()).sum()
    }

    /// Total live pages across all shard trees.
    pub fn page_count(&self) -> usize {
        self.shards.iter().map(|s| s.read().btree.page_count()).sum()
    }

    /// The key an object updated at `m.t_update` is indexed under (same
    /// derivation as the unsharded core: position forwarded to the label
    /// timestamp, grid-quantized, Z-encoded, packed by the layout).
    pub fn key_for(&self, m: &MovingPoint) -> u128 {
        self.placement(m).0
    }

    /// `(key, tid, t_lab)` for one object — the single derivation every
    /// update path shares.
    fn placement(&self, m: &MovingPoint) -> (u128, u8, Timestamp) {
        let t_lab = self.part.label_timestamp(m.t_update);
        let tid = self.part.partition_of_label(t_lab);
        let pos_at_label = m.position_at(t_lab);
        let (gx, gy) = self.space.to_grid(&pos_at_label);
        let zv = self.layout.mask_zv(encode(gx, gy));
        (self.layout.key(tid, zv, m.uid.0), tid, t_lab)
    }

    /// Insert or update one object: the old entry (in whichever shard
    /// holds it) is deleted exactly, then the new entry is inserted into
    /// the target shard. Locks are taken one shard at a time, so
    /// concurrent upserts to different partitions only contend on the
    /// shards they actually touch; an update that stays within its
    /// partition (the common case — repeated reports in one phase) locks
    /// only that one shard.
    pub fn upsert(&self, m: MovingPoint) {
        self.try_upsert(m).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"));
    }

    /// Fallible twin of [`ShardedMovingIndex::upsert`]: an unresolvable
    /// media fault on the direct write path surfaces as
    /// [`IndexError::Io`] instead of panicking, and a failed call is not
    /// committed to the WAL. The OLC and buffered write paths still run
    /// the legacy tree calls (infallible by design); disable OLC writes
    /// and flush message buffers before operating on suspect media.
    ///
    /// On `Err` the object's previous entry may already have been
    /// deleted with the new one not yet inserted: the uid reads as
    /// absent until a retried upsert succeeds. The migration epoch is
    /// always rebalanced on the error path, so concurrent scans cannot
    /// be wedged by a failed migration.
    pub fn try_upsert(&self, m: MovingPoint) -> Result<(), IndexError> {
        debug_assert!(
            m.speed() <= self.max_speed + 1e-9,
            "object {} exceeds the declared max speed",
            m.uid
        );
        let (key, tid, t_lab) = self.placement(&m);
        // OLC fast path: a same-shard refresh runs all of its page I/O
        // under the shard *read* lock — the tree's per-page latches are
        // the only write-side exclusion — publishing the new entry first
        // and deleting the displaced one after the map points at the new
        // key (transient duplicate, never a transient miss; see
        // [`ShardedMovingIndex::set_olc_writes`]). The exclusive lock is
        // held only for the O(1) map/label update in between.
        {
            let s = self.shards[tid as usize].read();
            if s.btree.olc_enabled() && s.current_key.contains_key(&m.uid) {
                s.btree.olc_insert(key, ObjectRecord::from_moving_point(&m));
                drop(s);
                let old = {
                    let mut s = self.shards[tid as usize].write();
                    s.label = Some(t_lab);
                    s.current_key.insert(m.uid, key)
                };
                // The map slot can only have been emptied by a concurrent
                // same-uid writer, which the concurrency contract already
                // declares racy; whoever displaced a key deletes it.
                if let Some(old) = old {
                    if old != key {
                        self.shards[tid as usize].read().btree.olc_delete(old);
                    }
                }
                self.commit_op();
                return Ok(());
            }
        }
        // Fast path: the object already lives in the target shard — a uid
        // is in at most one shard, so no other shard needs to be touched.
        {
            let mut s = self.shards[tid as usize].write();
            if let Some(old) = s.current_key.remove(&m.uid) {
                s.try_replace(old, key, ObjectRecord::from_moving_point(&m))?;
                s.current_key.insert(m.uid, key);
                s.label = Some(t_lab);
                drop(s);
                self.commit_op();
                return Ok(());
            }
        }
        // Slow path (migration or first sighting): evict the old entry
        // from any *other* shard, then insert into the target. A found
        // old entry makes this a cross-partition migration — the object
        // is briefly in no shard (or, interleaved badly, in two) — so the
        // span is bracketed by the migration epoch for scans to detect.
        // The body runs in a closure so a fault unwinds past the epoch
        // rebalance below instead of leaving `mig_started > mig_done`
        // forever (which would spin every multi-shard scan).
        let mut migrating = false;
        let result = (|| -> Result<(), IoFault> {
            for (i, shard) in self.shards.iter().enumerate() {
                if i == tid as usize {
                    continue;
                }
                if shard.read().current_key.contains_key(&m.uid) {
                    let mut s = shard.write();
                    if let Some(old) = s.current_key.remove(&m.uid) {
                        if !migrating {
                            migrating = true;
                            self.mig_started.fetch_add(1, Ordering::SeqCst);
                        }
                        s.try_del(old)?;
                        drop(s);
                        // The object is now in no shard: the exact window
                        // seeded schedules freeze to race scans and
                        // deadline cancellations against a migration.
                        sched::probe(sched::Site::MigSpan);
                    }
                }
            }
            let mut s = self.shards[tid as usize].write();
            if let Some(old) = s.current_key.remove(&m.uid) {
                // A concurrent same-uid upsert slipped in between the two
                // lock acquisitions; replace its entry exactly.
                s.try_del(old)?;
            }
            s.try_put(key, ObjectRecord::from_moving_point(&m))?;
            s.current_key.insert(m.uid, key);
            s.label = Some(t_lab);
            Ok(())
        })();
        if migrating {
            self.mig_done.fetch_add(1, Ordering::SeqCst);
        }
        result?;
        self.commit_op();
        Ok(())
    }

    /// Apply a batch of updates: group by target partition, delete stale
    /// entries shard by shard, then merge each partition's new entries
    /// into its tree as one sorted run
    /// ([`peb_btree::BTree::merge_sorted`]). When the same uid appears
    /// more than once in `updates`, the last occurrence wins. Returns the
    /// number of distinct objects applied.
    ///
    /// Batches bound for different partitions can be applied from
    /// different threads concurrently — this is the parallel update path
    /// the sharding exists for.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use peb_common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
    /// use peb_index::{KeyLayout, ShardedMovingIndex, TimePartitioning};
    /// use peb_storage::BufferPool;
    ///
    /// /// `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂` with a 20-bit Z-value, 32-bit uid.
    /// struct DemoLayout;
    /// impl KeyLayout for DemoLayout {
    ///     fn zv_bits(&self) -> u32 {
    ///         20
    ///     }
    ///     fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
    ///         ((tid as u128) << 52) | ((zv as u128) << 32) | uid as u128
    ///     }
    ///     fn partition_range(&self, tid: u8) -> (u128, u128) {
    ///         (self.key(tid, 0, 0), self.key(tid, (1 << 20) - 1, u64::from(u32::MAX)))
    ///     }
    /// }
    ///
    /// let idx = ShardedMovingIndex::new(
    ///     Arc::new(BufferPool::new(64)),
    ///     DemoLayout,
    ///     SpaceConfig::new(1000.0, 10, 1440.0),
    ///     TimePartitioning::new(120.0, 2),
    ///     3.0,
    /// );
    /// let updates: Vec<MovingPoint> = (0..100)
    ///     .map(|i| MovingPoint::new(UserId(i), Point::new(i as f64 * 9.0, 500.0), Vec2::ZERO, 10.0))
    ///     .collect();
    /// assert_eq!(idx.upsert_batch(&updates), 100);
    /// assert_eq!(idx.len(), 100);
    /// assert_eq!(idx.get(UserId(42)).unwrap().pos, Point::new(378.0, 500.0));
    /// ```
    pub fn upsert_batch(&self, updates: &[MovingPoint]) -> usize {
        // Last write per uid wins, as if the batch were applied in order.
        let mut latest: HashMap<UserId, MovingPoint> = HashMap::with_capacity(updates.len());
        for m in updates {
            debug_assert!(
                m.speed() <= self.max_speed + 1e-9,
                "object {} exceeds the declared max speed",
                m.uid
            );
            latest.insert(m.uid, *m);
        }

        // Placement for every survivor, grouped by target shard.
        let mut targets: HashMap<UserId, (u8, u128)> = HashMap::with_capacity(latest.len());
        let mut groups: Vec<Vec<(u128, ObjectRecord, UserId)>> =
            (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut labels: Vec<Option<Timestamp>> = vec![None; self.shards.len()];
        for m in latest.values() {
            let (key, tid, t_lab) = self.placement(m);
            targets.insert(m.uid, (tid, key));
            groups[tid as usize].push((key, ObjectRecord::from_moving_point(m), m.uid));
            let lab = &mut labels[tid as usize];
            *lab = Some(lab.map_or(t_lab, |l: f64| l.max(t_lab)));
        }

        // Phase 1a — find stale entries, one shard *read* lock at a time.
        // An entry survives in place only if it is already under its new
        // key in its new shard (then the merge just replaces the value).
        let stale: Vec<(usize, Vec<UserId>)> = self
            .shards
            .iter()
            .enumerate()
            .filter_map(|(tid, shard)| {
                let s = shard.read();
                if s.current_key.is_empty() {
                    return None;
                }
                let mut present: Vec<UserId> = targets
                    .iter()
                    .filter(|(uid, &(ttid, tkey))| {
                        s.current_key
                            .get(uid)
                            .is_some_and(|&old| ttid as usize != tid || tkey != old)
                    })
                    .map(|(uid, _)| *uid)
                    .collect();
                if present.is_empty() {
                    return None;
                }
                // `targets` iterates in HashMap order, which varies run
                // to run; deletes touch pages, so the order must be
                // pinned for the I/O ledger of a fixed workload to be
                // reproducible.
                present.sort_unstable();
                Some((tid, present))
            })
            .collect();

        // Any stale entry means this batch re-keys live objects across
        // two lock critical sections (evict now under one lock, merge
        // later under another — same shard or not), so the whole
        // evict→merge span is bracketed by the migration epoch: a
        // concurrent scan overlapping it retries instead of seeing a
        // re-keyed object twice or not at all.
        let migrating = !stale.is_empty();
        if migrating {
            self.mig_started.fetch_add(1, Ordering::SeqCst);
        }

        // Phase 1b — evict, one shard write lock at a time.
        for (tid, present) in stale {
            let mut s = self.shards[tid].write();
            for uid in present {
                // Re-check under the write lock (another batch may have
                // moved the object in between).
                if let Some(&old) = s.current_key.get(&uid) {
                    let (ttid, tkey) = targets[&uid];
                    if ttid as usize != tid || tkey != old {
                        s.current_key.remove(&uid);
                        s.del(old);
                    }
                }
            }
        }
        if migrating {
            // Evict→merge gap: re-keyed objects are in no shard until
            // phase 2 lands. Same seeded freeze point as the single-
            // object migration span.
            sched::probe(sched::Site::MigSpan);
        }

        // Phase 2 — merge each partition's run into its shard tree.
        for (tid, group) in groups.into_iter().enumerate() {
            if group.is_empty() {
                continue;
            }
            let mut entries: Vec<(u128, ObjectRecord)> = Vec::with_capacity(group.len());
            let mut keys: Vec<(UserId, u128)> = Vec::with_capacity(group.len());
            let mut sorted = group;
            sorted.sort_unstable_by_key(|(k, _, _)| *k);
            for (k, rec, uid) in sorted {
                entries.push((k, rec));
                keys.push((uid, k));
            }
            let mut s = self.shards[tid].write();
            if s.btree.buffered_writes() {
                // Buffered regime: the batch's sorted run becomes a run of
                // `Put` messages in one chain append (still in key order,
                // so the eventual flush compacts and applies them leaf by
                // leaf); `merge_sorted` would flush the buffer and do the
                // leaf writes now.
                s.btree.buffered_insert_batch(entries);
            } else {
                s.btree.merge_sorted(entries);
            }
            for (uid, k) in keys {
                s.current_key.insert(uid, k);
            }
            if let Some(lab) = labels[tid] {
                s.label = Some(lab);
            }
        }
        if migrating {
            self.mig_done.fetch_add(1, Ordering::SeqCst);
        }
        self.commit_op();
        targets.len()
    }

    /// Remove an object entirely. Returns whether it was present.
    ///
    /// With OLC writes on the removal linearizes at the map update (a
    /// racing [`ShardedMovingIndex::get`] answers `None` from there on)
    /// and the leaf delete runs under the shard read lock, overlapping
    /// readers; the entry may transiently remain visible to scans until
    /// the delete lands (read-committed, as genuine deletes always were).
    pub fn remove(&self, uid: UserId) -> bool {
        self.try_remove(uid).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`ShardedMovingIndex::remove`]: an unresolvable
    /// media fault on the direct delete path surfaces as
    /// [`IndexError::Io`] instead of panicking, and a failed call is not
    /// committed. On `Err` the uid's map entry is already vacated while
    /// the leaf entry may survive as an orphan the next scan can still
    /// see. The OLC and buffered paths run the legacy (infallible) tree
    /// calls, as in [`ShardedMovingIndex::try_upsert`].
    pub fn try_remove(&self, uid: UserId) -> Result<bool, IndexError> {
        if self.olc_writes() {
            for shard in &self.shards {
                if !shard.read().current_key.contains_key(&uid) {
                    continue;
                }
                let old = shard.write().current_key.remove(&uid);
                if let Some(old) = old {
                    let removed = shard.read().btree.olc_delete(old).is_some();
                    self.commit_op();
                    return Ok(removed);
                }
            }
            self.commit_op();
            return Ok(false);
        }
        for shard in &self.shards {
            if shard.read().current_key.contains_key(&uid) {
                let mut s = shard.write();
                if let Some(old) = s.current_key.remove(&uid) {
                    let removed = if s.btree.buffered_writes() {
                        // `current_key` held the uid, so the entry exists
                        // (possibly only as a buffered `Put` message); the
                        // tombstone message removes it either way.
                        s.btree.buffered_delete(old);
                        true
                    } else {
                        s.btree.try_delete(old)?.is_some()
                    };
                    drop(s);
                    self.commit_op();
                    return Ok(removed);
                }
            }
        }
        self.commit_op();
        Ok(false)
    }

    /// Fetch an object's current record by id (point lookup through disk).
    pub fn get(&self, uid: UserId) -> Option<MovingPoint> {
        self.try_get(uid).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`ShardedMovingIndex::get`]: an unresolvable
    /// media fault during the point lookup surfaces as
    /// [`IndexError::Io`] instead of panicking.
    pub fn try_get(&self, uid: UserId) -> Result<Option<MovingPoint>, IndexError> {
        for shard in &self.shards {
            let s = shard.read();
            if let Some(&key) = s.current_key.get(&uid) {
                return Ok(s.btree.try_get(key)?.map(|r| r.to_moving_point()));
            }
        }
        Ok(None)
    }

    /// The current index key of a live object, if any.
    pub fn current_key_of(&self, uid: UserId) -> Option<u128> {
        self.shards.iter().find_map(|shard| shard.read().current_key.get(&uid).copied())
    }

    /// The live `(tid, label timestamp)` pairs, sorted by tid.
    pub fn live_partitions(&self) -> Vec<(u8, Timestamp)> {
        self.shards
            .iter()
            .enumerate()
            .filter_map(|(tid, shard)| shard.read().label.map(|l| (tid as u8, l)))
            .collect()
    }

    /// Bx query-window enlargement for one partition (Fig 2 of the paper);
    /// identical to the unsharded core's.
    pub fn enlarge(&self, r: &Rect, t_lab: Timestamp, tq: Timestamp) -> Rect {
        let d = self.max_speed * (t_lab - tq).abs();
        Rect::new(r.xl - d, r.xu + d, r.yl - d, r.yu + d)
    }

    /// Scan the stored records with keys in `[lo, hi]`, in key order,
    /// stopping early if `visit` returns `false`; returns `false` if the
    /// scan was stopped. The range is routed to the shards whose partition
    /// ranges it intersects, visited in ascending key order (partition
    /// ranges are disjoint, so this preserves the global order).
    ///
    /// The scan is **migration-consistent** (see the module docs).
    /// Ranges intersecting a **single** shard — every `scan_interval` the
    /// query algorithms issue is one, since a PEB/Bx interval lives inside
    /// one partition — stream directly under that shard's read lock: one
    /// lock is already atomic against everything except a same-shard
    /// evict→merge gap (see the module docs), and the early-exit contract
    /// costs exactly the pages scanned until `visit` stops (the original
    /// behavior). Multi-shard ranges take the
    /// epoch-validated path: buffer the matching records while locking
    /// shards one at a time, then revalidate the migration epoch before
    /// handing anything to `visit` — if a cross-shard (or evict-then-
    /// merge) re-key overlapped the scan, the buffer is discarded and the
    /// scan retried; after `SCAN_EPOCH_RETRIES` failed attempts it waits
    /// for in-flight spans to land, acquires every intersecting shard
    /// lock at once (ascending tid — a strict superset of the writers'
    /// one-lock-at-a-time order, so deadlock-free), and streams a true
    /// snapshot. On that path the whole range is read before the stop
    /// signal is consulted (the snapshot must be taken to be validated),
    /// and persistent migration traffic delays — but with the cooperative
    /// yield below cannot permanently starve — the scan.
    ///
    /// The visiting closure may run under shard read locks: it must not
    /// call update methods on this index, but concurrent scans are free.
    pub fn scan_keys(
        &self,
        lo: u128,
        hi: u128,
        visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> bool {
        self.try_scan_keys(lo, hi, visit).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`ShardedMovingIndex::scan_keys`]: an
    /// unresolvable media fault anywhere in the leaf walk surfaces as
    /// [`IndexError::Io`] instead of panicking. Records already handed to
    /// `visit` before the fault stay delivered; consistency guarantees
    /// are unchanged for scans that complete.
    pub fn try_scan_keys(
        &self,
        lo: u128,
        hi: u128,
        mut visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> Result<bool, IndexError> {
        if lo > hi {
            return Ok(true);
        }
        let mut spans: Vec<(u128, u128, usize)> = (0..self.shards.len())
            .filter_map(|tid| {
                let (plo, phi) = self.layout.partition_range(tid as u8);
                (phi >= lo && plo <= hi).then_some((plo.max(lo), phi.min(hi), tid))
            })
            .collect();
        spans.sort_unstable_by_key(|span| span.0);

        // Single-shard fast path: atomic under one read lock, streams
        // with the visitor's early exit intact (the hot query path).
        if let [(l, h, tid)] = spans[..] {
            return Ok(self.shards[tid].read().btree.try_range_scan(l, h, &mut visit)?);
        }

        for _ in 0..SCAN_EPOCH_RETRIES {
            // Valid start state: no migration in flight. (`mig_done` is
            // read first so a span completing in between reads as "in
            // flight" — conservative, never unsound.)
            let done = self.mig_done.load(Ordering::SeqCst);
            let started = self.mig_started.load(Ordering::SeqCst);
            if done != started {
                // Let the migrator finish its span instead of burning the
                // scheduling quantum (the CI box has one CPU).
                std::thread::yield_now();
                continue;
            }
            let mut buf: Vec<(u128, ObjectRecord)> = Vec::new();
            for (l, h, tid) in &spans {
                let s = self.shards[*tid].read();
                s.btree.try_range_scan(*l, *h, |k, rec| {
                    buf.push((k, rec));
                    true
                })?;
            }
            // No migration started during the scan (and none was in
            // flight when it began) ⇒ no re-key overlapped any part of
            // it: the buffer is migration-consistent and can be emitted.
            if self.mig_started.load(Ordering::SeqCst) == started {
                for (k, rec) in buf {
                    if !visit(k, rec) {
                        return Ok(false);
                    }
                }
                return Ok(true);
            }
        }

        // Migrations keep racing us: wait for every in-flight span to
        // land, then take every intersecting shard lock at once and
        // re-verify the epoch *under* the locks. Holding all the locks
        // blocks any further re-key (a writer needs a write lock per
        // shard it touches), and the under-lock epoch check rules out a
        // span that slipped a delete in before we finished acquiring —
        // the mid-air case where the object is momentarily in no shard
        // and no locking alone could make the scan see it. Each wait
        // yields the CPU so the migration being waited on can complete;
        // every span is finite, so the scan makes progress as soon as a
        // gap in the migration traffic lets one lock-acquisition window
        // pass undisturbed.
        loop {
            let done = self.mig_done.load(Ordering::SeqCst);
            let started = self.mig_started.load(Ordering::SeqCst);
            if done != started {
                std::thread::yield_now();
                continue;
            }
            let guards: Vec<_> = spans.iter().map(|(_, _, tid)| self.shards[*tid].read()).collect();
            if self.mig_started.load(Ordering::SeqCst) != started
                || self.mig_done.load(Ordering::SeqCst) != started
            {
                drop(guards);
                std::thread::yield_now();
                continue;
            }
            for ((l, h, _), s) in spans.iter().zip(guards.iter()) {
                if !s.btree.try_range_scan(*l, *h, &mut visit)? {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
    }

    /// Scan the stored records whose keys fall in the **union** of
    /// `intervals` (inclusive, any order, overlap allowed), each exactly
    /// once, in ascending key order — the fused counterpart of one
    /// [`ShardedMovingIndex::scan_keys`] call per interval. Returns
    /// `false` if `visit` stopped the scan.
    ///
    /// The set is coalesced once ([`peb_btree::coalesce_intervals`]),
    /// clipped to each shard's partition range, and executed per shard by
    /// [`peb_btree::BTree::multi_range_scan`]: one descent per shard plus
    /// a leaf-chain walk across that shard's intervals, with upper-level
    /// pages re-routed through a version-validated descent cache instead
    /// of fresh root-to-leaf descents. Partition ranges are disjoint and
    /// ascending in `tid`, so per-shard execution preserves the global
    /// key order.
    ///
    /// Consistency matches [`ShardedMovingIndex::scan_keys`] exactly: a
    /// set touching a **single** shard (every PEB/Bx query's interval
    /// set for one partition is one) streams under that shard's read
    /// lock with the early-exit contract intact; a multi-shard set takes
    /// the migration-epoch validated path — buffer, revalidate, retry,
    /// and after `SCAN_EPOCH_RETRIES` failures wait out in-flight
    /// migration spans and hold every intersecting shard lock (in
    /// ascending key order, the same total order `scan_keys` uses) for a
    /// true snapshot.
    pub fn scan_keys_multi(
        &self,
        intervals: &[(u128, u128)],
        visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> bool {
        self.try_scan_keys_multi(intervals, visit)
            .unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible twin of [`ShardedMovingIndex::scan_keys_multi`]: an
    /// unresolvable media fault anywhere in the fused leaf walk surfaces
    /// as [`IndexError::Io`] instead of panicking (records already handed
    /// to `visit` stay delivered).
    pub fn try_scan_keys_multi(
        &self,
        intervals: &[(u128, u128)],
        mut visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> Result<bool, IndexError> {
        let runs = coalesce_intervals(intervals);
        if runs.is_empty() {
            return Ok(true);
        }
        // Clip the coalesced runs to each shard's partition range, then
        // order the shards by their first clipped key: partition ranges
        // are disjoint (the `KeyLayout` contract), so per-shard execution
        // in that order preserves the global ascending key order even for
        // layouts whose ranges do not ascend with tid.
        let mut spans: Vec<(usize, Vec<(u128, u128)>)> = Vec::new();
        for tid in 0..self.shards.len() {
            let (plo, phi) = self.layout.partition_range(tid as u8);
            let clipped: Vec<(u128, u128)> = runs
                .iter()
                .filter(|(lo, hi)| *hi >= plo && *lo <= phi)
                .map(|(lo, hi)| ((*lo).max(plo), (*hi).min(phi)))
                .collect();
            if !clipped.is_empty() {
                spans.push((tid, clipped));
            }
        }
        spans.sort_unstable_by_key(|(_, clipped)| clipped[0].0);
        if spans.is_empty() {
            return Ok(true);
        }

        // Single-shard fast path: atomic under one read lock, streams
        // with the visitor's early exit intact (the hot query path).
        if let [(tid, clipped)] = &spans[..] {
            return Ok(self.shards[*tid].read().btree.try_multi_range_scan(clipped, &mut visit)?);
        }

        for _ in 0..SCAN_EPOCH_RETRIES {
            let done = self.mig_done.load(Ordering::SeqCst);
            let started = self.mig_started.load(Ordering::SeqCst);
            if done != started {
                std::thread::yield_now();
                continue;
            }
            let mut buf: Vec<(u128, ObjectRecord)> = Vec::new();
            for (tid, clipped) in &spans {
                let s = self.shards[*tid].read();
                s.btree.try_multi_range_scan(clipped, |k, rec| {
                    buf.push((k, rec));
                    true
                })?;
            }
            if self.mig_started.load(Ordering::SeqCst) == started {
                for (k, rec) in buf {
                    if !visit(k, rec) {
                        return Ok(false);
                    }
                }
                return Ok(true);
            }
        }

        // Persistent migration traffic: same fallback as `scan_keys` —
        // wait out in-flight spans, hold every intersecting shard lock at
        // once (ascending key order, the same total order `scan_keys`
        // acquires in; writers take one lock at a time, so any shared
        // total order is deadlock-free), re-verify the epoch under the
        // locks, stream.
        loop {
            let done = self.mig_done.load(Ordering::SeqCst);
            let started = self.mig_started.load(Ordering::SeqCst);
            if done != started {
                std::thread::yield_now();
                continue;
            }
            let guards: Vec<_> = spans.iter().map(|(tid, _)| self.shards[*tid].read()).collect();
            if self.mig_started.load(Ordering::SeqCst) != started
                || self.mig_done.load(Ordering::SeqCst) != started
            {
                drop(guards);
                std::thread::yield_now();
                continue;
            }
            for ((_, clipped), s) in spans.iter().zip(guards.iter()) {
                if !s.btree.try_multi_range_scan(clipped, &mut visit)? {
                    return Ok(false);
                }
            }
            return Ok(true);
        }
    }

    /// Deadline-bounded twin of [`ShardedMovingIndex::try_scan_keys_multi`]:
    /// the identical fused traversal with `deadline` consulted at every
    /// page and entry checkpoint **inside** each shard tree
    /// ([`peb_btree::BTree::try_multi_range_scan_deadline`]) and at every
    /// **shard boundary**, so an expiring query stops within one page
    /// visit wherever it happens to be. Instead of a bare bool it returns
    /// a [`ScanReport`] tagging each intersected time partition with
    /// whether its range was fully delivered — the raw material for the
    /// serving layer's explicitly-partial query answers.
    ///
    /// Consistency: the single-shard fast path and the all-locks fallback
    /// are exactly as consistent as the unbounded scan. The epoch-
    /// validated multi-shard path buffers, then revalidates — an expired
    /// buffer that passes revalidation is emitted as a *consistent
    /// prefix* (no migration overlapped it); one that fails revalidation
    /// is retried, and each retry re-reads pages and therefore burns more
    /// of the deadline, degrading the answer rather than blocking it.
    /// Records already handed to `visit` before a fault stay delivered.
    pub fn try_scan_keys_multi_deadline(
        &self,
        intervals: &[(u128, u128)],
        deadline: &Deadline,
        mut visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> Result<ScanReport, IndexError> {
        let runs = coalesce_intervals(intervals);
        let mut spans: Vec<(usize, Vec<(u128, u128)>)> = Vec::new();
        for tid in 0..self.shards.len() {
            let (plo, phi) = self.layout.partition_range(tid as u8);
            let clipped: Vec<(u128, u128)> = runs
                .iter()
                .filter(|(lo, hi)| *hi >= plo && *lo <= phi)
                .map(|(lo, hi)| ((*lo).max(plo), (*hi).min(phi)))
                .collect();
            if !clipped.is_empty() {
                spans.push((tid, clipped));
            }
        }
        spans.sort_unstable_by_key(|(_, clipped)| clipped[0].0);
        if spans.is_empty() {
            return Ok(ScanReport {
                termination: ScanTermination::Complete,
                partitions: Vec::new(),
            });
        }

        // Single-shard fast path: stream under one read lock, deadline
        // checkpoints running inside the tree walk.
        if let [(tid, clipped)] = &spans[..] {
            let term = self.shards[*tid]
                .read()
                .btree
                .try_multi_range_scan_deadline(clipped, deadline, &mut visit)?;
            return Ok(ScanReport {
                termination: term,
                partitions: vec![(*tid as u8, term == ScanTermination::Complete)],
            });
        }

        // An expired deadline means "answer now with what you have" — and
        // what a scan that has not started has is nothing. Checked here
        // and in every wait below so a query whose budget ran out can
        // never be wedged behind migration traffic: it degrades to an
        // all-incomplete answer instead of blocking on writers.
        let expired_report = |spans: &[(usize, Vec<(u128, u128)>)]| ScanReport {
            termination: ScanTermination::Expired,
            partitions: spans.iter().map(|(tid, _)| (*tid as u8, false)).collect(),
        };
        for _ in 0..SCAN_EPOCH_RETRIES {
            if deadline.expired() {
                return Ok(expired_report(&spans));
            }
            let done = self.mig_done.load(Ordering::SeqCst);
            let started = self.mig_started.load(Ordering::SeqCst);
            if done != started {
                std::thread::yield_now();
                continue;
            }
            let mut buf: Vec<(u128, ObjectRecord)> = Vec::new();
            let mut parts: Vec<(u8, bool)> = Vec::with_capacity(spans.len());
            let mut termination = ScanTermination::Complete;
            for (tid, clipped) in &spans {
                // Shard-boundary checkpoint: partitions past the expiry
                // are not read at all — they report incomplete at zero
                // page cost.
                if termination != ScanTermination::Complete {
                    parts.push((*tid as u8, false));
                    continue;
                }
                let s = self.shards[*tid].read();
                let term = s.btree.try_multi_range_scan_deadline(clipped, deadline, |k, rec| {
                    buf.push((k, rec));
                    true
                })?;
                parts.push((*tid as u8, term == ScanTermination::Complete));
                if term == ScanTermination::Expired {
                    termination = ScanTermination::Expired;
                }
            }
            if self.mig_started.load(Ordering::SeqCst) == started {
                for (k, rec) in buf {
                    if !visit(k, rec) {
                        return Ok(ScanReport {
                            termination: ScanTermination::Stopped,
                            partitions: parts,
                        });
                    }
                }
                return Ok(ScanReport { termination, partitions: parts });
            }
        }

        // Persistent migration traffic: wait out in-flight spans and hold
        // every intersecting shard lock at once (same fallback order as
        // the unbounded scan), then stream with the deadline intact. The
        // waits burn wall time, never virtual ticks, so waiting cannot by
        // itself expire a query.
        loop {
            if deadline.expired() {
                return Ok(expired_report(&spans));
            }
            let done = self.mig_done.load(Ordering::SeqCst);
            let started = self.mig_started.load(Ordering::SeqCst);
            if done != started {
                std::thread::yield_now();
                continue;
            }
            let guards: Vec<_> = spans.iter().map(|(tid, _)| self.shards[*tid].read()).collect();
            if self.mig_started.load(Ordering::SeqCst) != started
                || self.mig_done.load(Ordering::SeqCst) != started
            {
                drop(guards);
                std::thread::yield_now();
                continue;
            }
            let mut parts: Vec<(u8, bool)> = Vec::with_capacity(spans.len());
            let mut termination = ScanTermination::Complete;
            for ((tid, clipped), s) in spans.iter().zip(guards.iter()) {
                if termination != ScanTermination::Complete {
                    parts.push((*tid as u8, false));
                    continue;
                }
                let term = s.btree.try_multi_range_scan_deadline(clipped, deadline, &mut visit)?;
                parts.push((*tid as u8, term == ScanTermination::Complete));
                if term != ScanTermination::Complete {
                    termination = term;
                }
            }
            return Ok(ScanReport { termination, partitions: parts });
        }
    }

    /// Deadline-bounded twin of [`ShardedMovingIndex::try_scan_keys`]:
    /// one contiguous range, same [`ScanReport`] contract as
    /// [`ShardedMovingIndex::try_scan_keys_multi_deadline`].
    pub fn try_scan_keys_deadline(
        &self,
        lo: u128,
        hi: u128,
        deadline: &Deadline,
        visit: impl FnMut(u128, ObjectRecord) -> bool,
    ) -> Result<ScanReport, IndexError> {
        if lo > hi {
            return Ok(ScanReport {
                termination: ScanTermination::Complete,
                partitions: Vec::new(),
            });
        }
        self.try_scan_keys_multi_deadline(&[(lo, hi)], deadline, visit)
    }

    /// Deterministic scan-path counters summed across all shard trees:
    /// root descents performed and branch pages the fused scans served
    /// from their descent caches (see [`peb_btree::ScanStats`]). The
    /// companion of [`ShardedMovingIndex::io_stats`] for the fused-scan
    /// experiment.
    pub fn scan_stats(&self) -> ScanStats {
        self.shards
            .iter()
            .fold(ScanStats::default(), |acc, s| acc.merged(&s.read().btree.scan_stats()))
    }

    /// Zero every shard tree's scan-path counters (measurement windows).
    pub fn reset_scan_stats(&self) {
        for shard in &self.shards {
            shard.read().btree.reset_scan_stats();
        }
    }

    /// Switch every shard tree between the exclusive write path (off,
    /// the default) and optimistic-lock-coupling writes (on): same-shard
    /// refreshes and removals run their page I/O under the shard's
    /// **read** lock through [`peb_btree::BTree::olc_insert`] /
    /// [`peb_btree::BTree::olc_delete`] — per-page latches and version
    /// validation instead of whole-shard exclusion — so they overlap
    /// both optimistic readers and each other. The shard's exclusive
    /// lock is retained only for O(1) in-memory bookkeeping (the
    /// `current_key` map and label) and for the batch/migration paths
    /// (`upsert_batch`, cross-partition migration, `rekey_where`,
    /// `expire_stale`, recovery), which keep their existing locking.
    ///
    /// Two documented relaxations while the knob is on:
    ///
    /// * a same-shard re-key publishes the new entry before deleting the
    ///   old one, so a concurrent scan may transiently see the object
    ///   twice (read-committed, like the batch evict→merge gap);
    /// * mutually exclusive with buffered writes (message chains are
    ///   single-writer state) — flipping either knob on asserts the
    ///   other is off.
    ///
    /// Requires exclusive access: flip it between measurement phases,
    /// not mid-workload.
    pub fn set_olc_writes(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.write().btree.set_olc_writes(on);
        }
        self.commit_op();
    }

    /// Whether OLC writes are on (one knob for all shards).
    pub fn olc_writes(&self) -> bool {
        self.shards.first().is_some_and(|s| s.read().btree.olc_enabled())
    }

    /// Switch every shard tree between the direct write path (off, the
    /// default) and B-epsilon-style buffered writes (on): upserts,
    /// deletes and re-keys append messages to per-tree buffer chains and
    /// flush downward in sorted batches ([`peb_btree::msg`]). Turning the
    /// knob **off** flushes every shard's pending messages first, so the
    /// leaves are exact again when this returns. Requires exclusive
    /// access: flip it between measurement phases, not mid-workload.
    pub fn set_buffered_writes(&mut self, on: bool) {
        for shard in &mut self.shards {
            shard.write().btree.set_buffered_writes(on);
        }
        self.commit_op();
    }

    /// Whether buffered writes are on (one knob for all shards).
    pub fn buffered_writes(&self) -> bool {
        self.shards.first().is_some_and(|s| s.read().btree.buffered_writes())
    }

    /// Messages currently buffered and not yet applied to leaves, summed
    /// across shards. Always 0 with buffered writes off.
    pub fn pending_messages(&self) -> usize {
        self.shards.iter().map(|s| s.read().btree.pending_messages()).sum()
    }

    /// Flush every shard's buffered messages down to the leaves without
    /// changing the knob. A no-op when nothing is pending.
    pub fn flush_messages(&self) {
        for shard in &self.shards {
            shard.write().btree.flush_messages();
        }
        self.commit_op();
    }

    /// Deterministic write-path counters summed across all shard trees:
    /// messages buffered, buffer flushes/spills, and leaf pages written
    /// (see [`peb_btree::WriteStats`]). The write-side companion of
    /// [`ShardedMovingIndex::scan_stats`] for the ingestion experiment.
    pub fn write_stats(&self) -> WriteStats {
        self.shards
            .iter()
            .fold(WriteStats::default(), |acc, s| acc.merged(&s.read().btree.write_stats()))
    }

    /// Zero every shard tree's write-path counters (measurement windows).
    pub fn reset_write_stats(&self) {
        for shard in &self.shards {
            shard.read().btree.reset_write_stats();
        }
    }

    /// OLC contention counters summed across all shard trees: optimistic
    /// write/scan restarts and gate escalations (see
    /// [`peb_btree::OlcStats`]). All zero while OLC writes are off.
    pub fn olc_stats(&self) -> OlcStats {
        self.shards
            .iter()
            .fold(OlcStats::default(), |acc, s| acc.merged(&s.read().btree.olc_stats()))
    }

    /// Zero every shard tree's OLC contention counters (measurement
    /// windows).
    pub fn reset_olc_stats(&self) {
        for shard in &self.shards {
            shard.read().btree.reset_olc_stats();
        }
    }

    /// Re-key live objects in place: `f(uid, old_key)` returns the new
    /// key for an object, or `None` to leave it alone. Returns how many
    /// objects were re-keyed.
    ///
    /// Intended for maintenance passes that rewrite a key *component*
    /// without moving the object spatially or temporally — the PEB-tree's
    /// sequence-value refresh is the canonical caller — so the new key
    /// must stay inside the object's current partition range (debug-
    /// asserted). Each shard is processed under its own write lock with
    /// uids visited in ascending order (deterministic page touches), and
    /// the whole pass is therefore atomic per shard with no migration
    /// epoch: a re-key never crosses a shard boundary. With buffered
    /// writes on, each move costs two messages (a tombstone plus a
    /// re-key `Put`) instead of a foreground delete+insert descent pair.
    pub fn rekey_where(&self, mut f: impl FnMut(UserId, u128) -> Option<u128>) -> usize {
        let mut moved = 0usize;
        for (tid, shard) in self.shards.iter().enumerate() {
            let mut s = shard.write();
            if s.current_key.is_empty() {
                continue;
            }
            let mut uids: Vec<UserId> = s.current_key.keys().copied().collect();
            uids.sort_unstable();
            for uid in uids {
                let old = s.current_key[&uid];
                let Some(new) = f(uid, old) else { continue };
                if new == old {
                    continue;
                }
                let (plo, phi) = self.layout.partition_range(tid as u8);
                debug_assert!(
                    (plo..=phi).contains(&new),
                    "rekey_where must not move object {uid} out of partition {tid}"
                );
                let Some(rec) = s.btree.get(old) else { continue };
                s.btree.buffered_rekey(old, new, rec);
                // Annotate the log (recovery replays the page images; the
                // record lets the harness audit what moved and why).
                self.pool.wal_rekey(s.btree.tree_id(), old, new);
                s.current_key.insert(uid, new);
                moved += 1;
            }
        }
        self.commit_op();
        moved
    }

    /// The number of migration spans ever started on this index (the
    /// migration epoch's leading edge). Exposed for tests and diagnostics;
    /// `scan_keys` consumes it internally.
    pub fn migration_epoch(&self) -> u64 {
        self.mig_started.load(Ordering::SeqCst)
    }

    /// Garbage-collect expired partitions: a shard whose label timestamp
    /// has passed (`label < now`) holds only objects that broke the "update
    /// at least once per `∆tmu`" contract, so the **whole shard tree is
    /// dropped in O(1)** (its pages leak on the simulated disk, which has
    /// no free list) instead of deleting entries key by key. Returns the
    /// number of objects dropped.
    pub fn expire_stale(&self, now: Timestamp) -> usize {
        let mut dropped = 0usize;
        for shard in &self.shards {
            if !matches!(shard.read().label, Some(l) if l < now) {
                continue;
            }
            let mut s = shard.write();
            if matches!(s.label, Some(l) if l < now) {
                dropped += s.current_key.len();
                s.current_key = HashMap::new();
                // The replacement tree inherits the scan and write ledgers
                // plus the buffering knob: expiry is structural
                // maintenance, not a measurement reset (the same contract
                // `merge_sorted`'s rebuild keeps). The old tree's pending
                // messages die with it — they only described expired
                // entries — at zero page touches.
                let scans = s.btree.scan_stats();
                let writes = s.btree.write_stats();
                let buffered = s.btree.buffered_writes();
                let olc = s.btree.olc_enabled();
                let tree_id = s.btree.tree_id();
                s.btree = BTree::new(Arc::clone(&self.pool));
                s.btree.restore_scan_stats(scans);
                s.btree.restore_write_stats(writes.merged(&s.btree.write_stats()));
                s.btree.set_buffered_writes(buffered);
                s.btree.set_olc_writes(olc);
                // The replacement tree is the same logical partition: keep
                // its log identity so recovery reattaches the new root.
                s.btree.set_tree_id(tree_id);
                s.label = None;
            }
        }
        self.commit_op();
        dropped
    }

    /// O(1)-per-shard diagnostics, aggregated: entry/page counts summed,
    /// height is the tallest shard, leaf fill weighted by leaf pages.
    pub fn stats(&self) -> IndexStats {
        let mut tree =
            TreeStats { entries: 0, height: 0, leaf_pages: 0, total_pages: 0, avg_leaf_fill: 0.0 };
        let mut objects = 0usize;
        let mut fill_weight = 0.0f64;
        for shard in &self.shards {
            let s = shard.read();
            let ts = s.btree.stats();
            tree.entries += ts.entries;
            tree.height = tree.height.max(ts.height);
            tree.leaf_pages += ts.leaf_pages;
            tree.total_pages += ts.total_pages;
            fill_weight += ts.avg_leaf_fill * ts.leaf_pages as f64;
            objects += s.current_key.len();
        }
        tree.avg_leaf_fill =
            if tree.leaf_pages == 0 { 0.0 } else { fill_weight / tree.leaf_pages as f64 };
        IndexStats { tree, partitions: self.live_partitions(), objects }
    }

    /// Per-shard tree shapes, for load-balance diagnostics: `(tid, stats)`
    /// for every shard, including empty ones.
    pub fn shard_stats(&self) -> Vec<(u8, TreeStats)> {
        self.shards
            .iter()
            .enumerate()
            .map(|(tid, shard)| (tid as u8, shard.read().btree.stats()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use peb_common::{Point, Vec2};

    /// Same minimal layout as the `MovingIndex` tests: `[TID]₂ ⊕ [ZV]₂ ⊕
    /// [UID]₂` with a fixed 20-bit ZV.
    #[derive(Debug, Clone, Copy)]
    struct TestLayout;

    const ZV_BITS: u32 = 20;
    const UID_BITS: u32 = 32;

    impl KeyLayout for TestLayout {
        fn zv_bits(&self) -> u32 {
            ZV_BITS
        }

        fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
            ((tid as u128) << (ZV_BITS + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
        }

        fn partition_range(&self, tid: u8) -> (u128, u128) {
            (self.key(tid, 0, 0), self.key(tid, (1 << ZV_BITS) - 1, (1 << UID_BITS) - 1))
        }
    }

    fn index(cap: usize) -> ShardedMovingIndex<TestLayout> {
        ShardedMovingIndex::new(
            Arc::new(BufferPool::new(cap)),
            TestLayout,
            SpaceConfig::new(1000.0, 10, 1440.0),
            TimePartitioning::new(120.0, 2),
            3.0,
        )
    }

    fn unsharded(cap: usize) -> crate::MovingIndex<TestLayout> {
        crate::MovingIndex::new(
            Arc::new(BufferPool::new(cap)),
            TestLayout,
            SpaceConfig::new(1000.0, 10, 1440.0),
            TimePartitioning::new(120.0, 2),
            3.0,
        )
    }

    fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
        MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
    }

    /// Crash-and-recover an index: harvest the (unflushed) disks, replay
    /// the log, resume, and rebuild. Returns the recovered twin.
    fn crash_recover(idx: &ShardedMovingIndex<TestLayout>) -> ShardedMovingIndex<TestLayout> {
        let (mut data, log) = idx.pool().harvest_crash_state();
        let rec = peb_storage::recover(&mut data, &log);
        let wal = peb_storage::Wal::resume(log, &rec);
        let pool = Arc::new(BufferPool::from_recovered(64, 1, data, wal));
        ShardedMovingIndex::recover(
            pool,
            &rec,
            TestLayout,
            SpaceConfig::new(1000.0, 10, 1440.0),
            TimePartitioning::new(120.0, 2),
            3.0,
        )
    }

    fn assert_same_index(
        back: &ShardedMovingIndex<TestLayout>,
        idx: &ShardedMovingIndex<TestLayout>,
        uids: impl Iterator<Item = u64>,
    ) {
        assert_eq!(back.len(), idx.len());
        assert_eq!(back.live_partitions(), idx.live_partitions());
        for i in uids {
            assert_eq!(back.current_key_of(UserId(i)), idx.current_key_of(UserId(i)), "uid {i}");
            assert_eq!(back.get(UserId(i)), idx.get(UserId(i)), "uid {i}");
        }
        let collect = |x: &ShardedMovingIndex<TestLayout>| {
            let mut v = Vec::new();
            x.scan_keys(0, u128::MAX, |k, r| {
                v.push((k, r));
                true
            });
            v
        };
        assert_eq!(collect(back), collect(idx), "full scans must agree");
    }

    #[test]
    fn recover_rebuilds_index_from_unflushed_crash() {
        let mut idx = index(64);
        idx.set_durable(true);
        for i in 0..300u64 {
            idx.upsert(still(
                i,
                (i % 50) as f64 * 20.0 + 3.0,
                (i / 50) as f64 * 150.0 + 3.0,
                (i % 2) as f64 * 70.0,
            ));
        }
        assert!(idx.remove(UserId(5)));
        assert_eq!(idx.committed_ops(), 301);
        // No flush, no checkpoint: everything after `set_durable`'s
        // initial checkpoint must come back from the log alone.
        let back = crash_recover(&idx);
        assert_eq!(back.committed_ops(), 301);
        assert_same_index(&back, &idx, 0..300);
        // The recovered index keeps working — and keeps committing.
        back.upsert(still(700, 500.0, 500.0, 10.0));
        assert_eq!(back.committed_ops(), 302);
        assert!(back.get(UserId(700)).is_some());
    }

    #[test]
    fn recover_reattaches_buffered_message_chains() {
        let mut idx = index(64);
        idx.set_durable(true);
        idx.set_buffered_writes(true);
        for i in 0..200u64 {
            idx.upsert(still(i, (i % 40) as f64 * 25.0 + 2.0, (i / 40) as f64 * 190.0 + 2.0, 10.0));
        }
        idx.remove(UserId(3));
        assert!(idx.pending_messages() > 0, "chains must be live for this test to bite");
        let pending = idx.pending_messages();
        let back = crash_recover(&idx);
        assert_eq!(back.pending_messages(), pending, "chains reattach message-for-message");
        assert_same_index(&back, &idx, 0..200);
    }

    #[test]
    fn upsert_get_remove_roundtrip() {
        let idx = index(64);
        idx.upsert(still(1, 100.0, 200.0, 0.0));
        idx.upsert(still(2, 300.0, 400.0, 0.0));
        assert_eq!(idx.len(), 2);
        assert_eq!(idx.get(UserId(1)).unwrap().pos, Point::new(100.0, 200.0));
        idx.upsert(still(1, 111.0, 222.0, 5.0));
        assert_eq!(idx.len(), 2, "update must not duplicate");
        assert!(idx.remove(UserId(1)));
        assert!(!idx.remove(UserId(1)));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn keys_and_partitions_match_the_unsharded_core() {
        // The sharded index must place every object exactly where the
        // single-tree core places it — same keys, same partition labels.
        let sharded = index(64);
        let mut single = unsharded(64);
        for i in 0..200u64 {
            let m = still(
                i,
                (i % 40) as f64 * 25.0 + 2.0,
                (i / 40) as f64 * 190.0 + 2.0,
                (i % 3) as f64 * 55.0,
            );
            sharded.upsert(m);
            single.upsert(m);
        }
        assert_eq!(sharded.len(), single.len());
        assert_eq!(sharded.live_partitions(), single.live_partitions());
        for i in 0..200u64 {
            assert_eq!(sharded.current_key_of(UserId(i)), single.current_key_of(UserId(i)));
            assert_eq!(sharded.get(UserId(i)), single.get(UserId(i)));
        }
    }

    #[test]
    fn partition_migration_on_phase_rollover() {
        let idx = index(64);
        idx.upsert(still(7, 100.0, 100.0, 10.0));
        let k1 = idx.current_key_of(UserId(7)).unwrap();
        let parts1 = idx.live_partitions();
        assert_eq!(parts1.len(), 1);
        assert_eq!(parts1[0].1, 120.0);

        idx.upsert(still(7, 110.0, 110.0, 70.0));
        let k2 = idx.current_key_of(UserId(7)).unwrap();
        assert_ne!(k1, k2, "rollover must re-key the object");
        assert_eq!(idx.len(), 1, "migration is delete+insert, not copy");

        // The vacated partition's tree holds nothing.
        let (lo, hi) = idx.layout().partition_range(parts1[0].0);
        let mut leftovers = 0;
        idx.scan_keys(lo, hi, |_, _| {
            leftovers += 1;
            true
        });
        assert_eq!(leftovers, 0, "no ghost entry in the vacated shard");

        assert_eq!(idx.expire_stale(150.0), 0);
        assert_eq!(idx.live_partitions().len(), 1);
        assert!(idx.get(UserId(7)).is_some());
    }

    #[test]
    fn expire_drops_whole_shards() {
        let idx = index(64);
        for i in 0..500u64 {
            idx.upsert(still(i, (i % 50) as f64 * 20.0 + 3.0, (i / 50) as f64 * 95.0 + 3.0, 10.0));
        }
        idx.upsert(still(900, 200.0, 200.0, 130.0)); // label 240
        assert_eq!(idx.live_partitions().len(), 2);

        // Warm the scan ledger so the drop has counters to preserve.
        idx.scan_keys(0, u128::MAX, |_, _| true);
        let scans_before = idx.scan_stats();
        assert!(scans_before.descents > 0);

        // Expiry is an O(1) shard drop: no per-key page reads.
        idx.pool().reset_stats();
        let dropped = idx.expire_stale(200.0);
        assert_eq!(dropped, 500);
        assert_eq!(
            idx.scan_stats(),
            scans_before,
            "the scan ledger must survive the expiry swap like every other counter"
        );
        // Dropping the shard costs exactly one page touch (initializing
        // the replacement root leaf), not a walk over 500 entries.
        assert_eq!(idx.pool().stats().logical_reads, 1, "shard drop must not walk the tree");
        assert_eq!(idx.len(), 1);
        assert!(idx.get(UserId(0)).is_none());
        assert!(idx.get(UserId(900)).is_some());
        assert_eq!(idx.expire_stale(200.0), 0, "idempotent");
    }

    #[test]
    fn bulk_load_equals_incremental() {
        let users: Vec<MovingPoint> = (0..300u64)
            .map(|i| {
                still(
                    i,
                    (i % 50) as f64 * 20.0 + 3.0,
                    (i / 50) as f64 * 150.0 + 3.0,
                    (i % 2) as f64 * 70.0,
                )
            })
            .collect();
        let bulk = ShardedMovingIndex::bulk_load(
            Arc::new(BufferPool::new(64)),
            TestLayout,
            SpaceConfig::new(1000.0, 10, 1440.0),
            TimePartitioning::new(120.0, 2),
            3.0,
            &users,
            1.0,
        );
        let inc = index(64);
        for m in &users {
            inc.upsert(*m);
        }
        assert_eq!(bulk.len(), inc.len());
        for m in &users {
            assert_eq!(bulk.current_key_of(m.uid), inc.current_key_of(m.uid));
            assert_eq!(bulk.get(m.uid), inc.get(m.uid));
        }
        assert_eq!(bulk.live_partitions(), inc.live_partitions());
    }

    #[test]
    fn batch_equals_single_object_path() {
        // Two phases of updates: the batch path must land the index in
        // exactly the same state as the one-at-a-time path, including
        // cross-partition migrations and same-uid-twice batches.
        let round1: Vec<MovingPoint> = (0..300u64)
            .map(|i| still(i, (i % 60) as f64 * 16.0 + 4.0, (i / 60) as f64 * 190.0 + 4.0, 10.0))
            .collect();
        let mut round2: Vec<MovingPoint> = (0..300u64)
            .map(|i| still(i, (i % 55) as f64 * 18.0 + 1.0, (i / 55) as f64 * 160.0 + 1.0, 70.0))
            .collect();
        // Duplicate a few uids in the second batch: last write must win.
        round2.push(still(5, 900.0, 900.0, 71.0));
        round2.push(still(6, 910.0, 910.0, 71.0));

        let batched = index(256);
        assert_eq!(batched.upsert_batch(&round1), 300);
        assert_eq!(batched.upsert_batch(&round2), 300);

        let single = index(256);
        for m in round1.iter().chain(round2.iter()) {
            single.upsert(*m);
        }

        assert_eq!(batched.len(), single.len());
        assert_eq!(batched.live_partitions(), single.live_partitions());
        for i in 0..300u64 {
            assert_eq!(batched.current_key_of(UserId(i)), single.current_key_of(UserId(i)));
            assert_eq!(batched.get(UserId(i)), single.get(UserId(i)));
        }
        assert_eq!(batched.get(UserId(5)).unwrap().pos, Point::new(900.0, 900.0));
    }

    #[test]
    fn batch_within_one_partition_replaces_in_place() {
        // Same partition, same keys (unchanged positions): the merge must
        // replace values without growing the tree.
        let idx = index(64);
        let users: Vec<MovingPoint> =
            (0..100u64).map(|i| still(i, i as f64 * 9.0 + 2.0, 500.0, 10.0)).collect();
        idx.upsert_batch(&users);
        let keys_before: Vec<_> =
            (0..100u64).map(|i| idx.current_key_of(UserId(i)).unwrap()).collect();
        idx.upsert_batch(&users);
        assert_eq!(idx.len(), 100);
        for (i, k) in keys_before.iter().enumerate() {
            assert_eq!(idx.current_key_of(UserId(i as u64)), Some(*k));
        }
    }

    #[test]
    fn scan_keys_preserves_global_order_across_shards() {
        let idx = index(128);
        for i in 0..200u64 {
            // Spread over two partitions.
            let t = if i % 2 == 0 { 10.0 } else { 70.0 };
            idx.upsert(still(i, (i % 40) as f64 * 25.0 + 2.0, (i / 40) as f64 * 190.0 + 2.0, t));
        }
        let mut keys = Vec::new();
        idx.scan_keys(0, u128::MAX, |k, _| {
            keys.push(k);
            true
        });
        assert_eq!(keys.len(), 200);
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "global key order across shards");

        // Early exit propagates across shard boundaries.
        let mut seen = 0;
        let completed = idx.scan_keys(0, u128::MAX, |_, _| {
            seen += 1;
            seen < 3
        });
        assert!(!completed);
        assert_eq!(seen, 3);
    }

    #[test]
    fn migration_epoch_tracks_rekeying_spans() {
        let idx = index(64);
        assert_eq!(idx.migration_epoch(), 0);
        // First sighting: an insert, not a migration.
        idx.upsert(still(1, 100.0, 100.0, 10.0));
        assert_eq!(idx.migration_epoch(), 0);
        // Same-partition update: atomic under one shard lock, no span.
        idx.upsert(still(1, 120.0, 120.0, 20.0));
        assert_eq!(idx.migration_epoch(), 0);
        // Phase rollover: the object crosses partitions — one span.
        idx.upsert(still(1, 130.0, 130.0, 70.0));
        assert_eq!(idx.migration_epoch(), 1);
        // A batch whose objects only re-key (same or cross shard) opens
        // exactly one span for the whole batch.
        let batch: Vec<MovingPoint> =
            (0..50u64).map(|i| still(i, i as f64 * 18.0 + 1.0, 400.0, 130.0)).collect();
        idx.upsert_batch(&batch);
        assert_eq!(idx.migration_epoch(), 2, "uid 1 re-keyed; one span per batch");
        // A batch that changes nothing (same keys) opens no span.
        idx.upsert_batch(&batch);
        assert_eq!(idx.migration_epoch(), 2);
        // Scans still work and see each object exactly once afterwards.
        let mut seen = std::collections::HashSet::new();
        idx.scan_keys(0, u128::MAX, |_, rec| {
            assert!(seen.insert(rec.uid), "duplicate uid {}", rec.uid);
            true
        });
        assert_eq!(seen.len(), idx.len());
    }

    #[test]
    fn scan_keys_multi_equals_per_interval_scan_keys() {
        let idx = index(256);
        for i in 0..400u64 {
            // Two partitions, spread positions.
            let t = if i % 2 == 0 { 10.0 } else { 70.0 };
            idx.upsert(still(i, (i % 40) as f64 * 25.0 + 2.0, (i / 40) as f64 * 95.0 + 2.0, t));
        }
        // Interval set spanning both partitions, unsorted, overlapping.
        let (lo0, hi0) = idx.layout().partition_range(0);
        let (lo1, hi1) = idx.layout().partition_range(1);
        let mid0 = lo0 + (hi0 - lo0) / 2;
        let mid1 = lo1 + (hi1 - lo1) / 2;
        let intervals =
            vec![(mid1, hi1), (lo0, mid0), (lo1, mid1), (mid0 / 2, mid0), (hi1, hi0.max(hi1))];
        let runs = peb_btree::coalesce_intervals(&intervals);

        let mut want = Vec::new();
        for (lo, hi) in &runs {
            idx.scan_keys(*lo, *hi, |k, rec| {
                want.push((k, rec.uid));
                true
            });
        }
        let mut got = Vec::new();
        assert!(idx.scan_keys_multi(&intervals, |k, rec| {
            got.push((k, rec.uid));
            true
        }));
        assert!(!got.is_empty());
        assert_eq!(got, want, "fused multi-shard scan must match per-interval scans");
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0), "global key order across shards");

        // Early exit propagates on the multi-shard path too.
        let mut seen = 0;
        let completed = idx.scan_keys_multi(&intervals, |_, _| {
            seen += 1;
            seen < 3
        });
        assert!(!completed);
        assert_eq!(seen, 3);

        // Degenerate sets.
        assert!(idx.scan_keys_multi(&[], |_, _| true));
        assert!(idx.scan_keys_multi(&[(5, 1)], |_, _| true));
    }

    #[test]
    fn scan_keys_multi_single_shard_uses_fused_descents() {
        let idx = index(256);
        for i in 0..600u64 {
            idx.upsert(still(i, (i % 60) as f64 * 16.0 + 1.0, (i / 60) as f64 * 95.0 + 1.0, 10.0));
        }
        let tid = idx.live_partitions()[0].0;
        let l = *idx.layout();
        // Many small single-partition intervals (one per slice of ZV space).
        let intervals: Vec<(u128, u128)> = (0..30u64)
            .map(|j| {
                let zlo = j * 30_000;
                (l.key(tid, zlo, 0), l.key(tid, zlo + 500, (1 << UID_BITS) - 1))
            })
            .collect();
        let runs = peb_btree::coalesce_intervals(&intervals);
        assert!(runs.len() > 1);

        idx.reset_scan_stats();
        let mut want = Vec::new();
        for (lo, hi) in &runs {
            idx.scan_keys(*lo, *hi, |k, rec| {
                want.push((k, rec.uid));
                true
            });
        }
        let per = idx.scan_stats();
        assert_eq!(per.descents as usize, runs.len());

        idx.reset_scan_stats();
        let mut got = Vec::new();
        idx.scan_keys_multi(&intervals, |k, rec| {
            got.push((k, rec.uid));
            true
        });
        let fused = idx.scan_stats();
        assert_eq!(got, want);
        assert!(
            fused.descents * 2 <= per.descents,
            "fused descents {} vs per-interval {}",
            fused.descents,
            per.descents
        );
    }

    #[test]
    fn io_accounting_flows_through_the_shared_pool() {
        let idx = index(8);
        for i in 0..2_000u64 {
            idx.upsert(still(i, (i % 100) as f64 * 10.0 + 5.0, (i / 100) as f64 * 45.0 + 5.0, 0.0));
        }
        let pool = Arc::clone(idx.pool());
        pool.clear();
        pool.reset_stats();
        let (lo, hi) = idx.layout().partition_range(idx.live_partitions()[0].0);
        let mut n = 0;
        idx.scan_keys(lo, hi, |_, _| {
            n += 1;
            true
        });
        assert_eq!(n, 2_000);
        assert!(idx.io_stats().physical_reads > 0, "cold scan must do I/O");
        assert_eq!(idx.io_stats(), pool.stats(), "io_stats is the shared pool's counters");
    }

    #[test]
    fn buffered_updates_match_the_direct_path() {
        // Same workload through both write paths — singles, a batch with
        // migrations, removes — must yield identical visible state, both
        // while messages are pending and after the final flush.
        let mut buf = index(256);
        buf.set_buffered_writes(true);
        assert!(buf.buffered_writes());
        let plain = index(256);

        let round1: Vec<MovingPoint> = (0..300u64)
            .map(|i| still(i, (i % 60) as f64 * 16.0 + 4.0, (i / 60) as f64 * 190.0 + 4.0, 10.0))
            .collect();
        let round2: Vec<MovingPoint> = (0..300u64)
            .map(|i| still(i, (i % 55) as f64 * 18.0 + 1.0, (i / 55) as f64 * 160.0 + 1.0, 70.0))
            .collect();
        for m in &round1 {
            buf.upsert(*m);
            plain.upsert(*m);
        }
        assert_eq!(buf.upsert_batch(&round2), plain.upsert_batch(&round2));
        for uid in [3u64, 4, 5] {
            assert!(buf.remove(UserId(uid)));
            assert!(plain.remove(UserId(uid)));
        }
        assert!(!buf.remove(UserId(3)), "tombstoned object must stay gone");

        let w = buf.write_stats();
        assert!(w.messages_buffered > 0, "buffered path must go through messages");
        assert_eq!(plain.write_stats().messages_buffered, 0);

        let compare = |buf: &ShardedMovingIndex<TestLayout>| {
            assert_eq!(buf.len(), plain.len());
            assert_eq!(buf.live_partitions(), plain.live_partitions());
            for i in 0..300u64 {
                assert_eq!(buf.current_key_of(UserId(i)), plain.current_key_of(UserId(i)));
                assert_eq!(buf.get(UserId(i)), plain.get(UserId(i)));
            }
            let mut got = Vec::new();
            buf.scan_keys(0, u128::MAX, |k, rec| {
                got.push((k, rec.uid));
                true
            });
            let mut want = Vec::new();
            plain.scan_keys(0, u128::MAX, |k, rec| {
                want.push((k, rec.uid));
                true
            });
            assert_eq!(got, want, "scans must overlay pending messages exactly");
        };
        compare(&buf); // messages may still be pending here
        buf.set_buffered_writes(false);
        assert_eq!(buf.pending_messages(), 0, "turning the knob off flushes");
        compare(&buf);
    }

    #[test]
    fn rekey_where_rewrites_keys_without_moving_objects() {
        for buffered in [false, true] {
            let mut idx = index(128);
            idx.set_buffered_writes(buffered);
            for i in 0..200u64 {
                idx.upsert(still(
                    i,
                    (i % 40) as f64 * 25.0 + 2.0,
                    (i / 40) as f64 * 190.0 + 2.0,
                    10.0,
                ));
            }
            let before: Vec<_> = (0..200u64).map(|i| idx.get(UserId(i)).unwrap()).collect();
            // Flip one ZV bit for even uids: stays in the partition, keys
            // remain unique (uid bits are untouched).
            let moved = idx.rekey_where(|uid, old| (uid.0 % 2 == 0).then_some(old ^ (1u128 << 40)));
            assert_eq!(moved, 100);
            assert_eq!(idx.len(), 200);
            assert_eq!(idx.rekey_where(|_, _| None), 0, "None leaves everything alone");
            for i in 0..200u64 {
                assert_eq!(idx.get(UserId(i)).unwrap(), before[i as usize], "records unchanged");
            }
            if buffered {
                assert_eq!(idx.write_stats().rekey_messages, 100);
                idx.set_buffered_writes(false);
                for i in 0..200u64 {
                    assert_eq!(idx.get(UserId(i)).unwrap(), before[i as usize]);
                }
            }
            let mut seen = std::collections::HashSet::new();
            idx.scan_keys(0, u128::MAX, |_, rec| {
                assert!(seen.insert(rec.uid));
                true
            });
            assert_eq!(seen.len(), 200, "every object visible exactly once after the re-key");
        }
    }

    #[test]
    fn expire_preserves_write_ledger_and_buffering() {
        let mut idx = index(64);
        idx.set_buffered_writes(true);
        for i in 0..200u64 {
            idx.upsert(still(i, (i % 40) as f64 * 25.0 + 2.0, (i / 40) as f64 * 95.0 + 2.0, 10.0));
        }
        idx.upsert(still(900, 200.0, 200.0, 130.0));
        let before = idx.write_stats();
        assert!(before.messages_buffered > 0);

        let dropped = idx.expire_stale(200.0);
        assert_eq!(dropped, 200);
        assert!(idx.buffered_writes(), "the knob survives the shard swap");
        let after = idx.write_stats();
        assert!(
            after.messages_buffered >= before.messages_buffered,
            "the write ledger must survive the expiry swap like every other counter"
        );
        assert!(idx.get(UserId(0)).is_none());
        assert!(idx.get(UserId(900)).is_some());
    }

    #[test]
    fn stats_aggregate_across_shards() {
        let idx = index(64);
        for i in 0..100u64 {
            let t = if i % 2 == 0 { 10.0 } else { 70.0 };
            idx.upsert(still(i, i as f64 * 9.0 + 2.0, 500.0, t));
        }
        let s = idx.stats();
        assert_eq!(s.objects, 100);
        assert_eq!(s.tree.entries, 100);
        assert_eq!(s.partitions.len(), 2);
        assert!(s.tree.avg_leaf_fill > 0.0);
        assert_eq!(idx.shard_stats().len(), idx.num_shards());
        let per_shard: usize = idx.shard_stats().iter().map(|(_, t)| t.entries).sum();
        assert_eq!(per_shard, 100);
    }

    #[test]
    fn olc_writes_match_exclusive_writes_sequentially() {
        let mut olc = index(64);
        olc.set_olc_writes(true);
        assert!(olc.olc_writes());
        let exclusive = index(64);
        // First sightings (slow path), refreshes in place (OLC fast
        // path), cross-partition migrations (slow path again), removals.
        for i in 0..200u64 {
            let m = still(i, (i % 40) as f64 * 25.0 + 2.0, (i / 40) as f64 * 190.0 + 2.0, 10.0);
            olc.upsert(m);
            exclusive.upsert(m);
        }
        for i in 0..200u64 {
            let m = still(i, (i % 50) as f64 * 20.0 + 3.0, (i / 50) as f64 * 150.0 + 3.0, 15.0);
            olc.upsert(m);
            exclusive.upsert(m);
        }
        for i in (0..200u64).step_by(3) {
            // Different label phase: a genuine cross-partition migration.
            let m = still(i, 500.0, 500.0, 70.0);
            olc.upsert(m);
            exclusive.upsert(m);
        }
        for i in (0..200u64).step_by(7) {
            assert_eq!(olc.remove(UserId(i)), exclusive.remove(UserId(i)), "remove({i})");
        }
        assert_eq!(olc.len(), exclusive.len());
        assert_eq!(olc.live_partitions(), exclusive.live_partitions());
        for i in 0..200u64 {
            assert_eq!(olc.get(UserId(i)), exclusive.get(UserId(i)), "uid {i}");
        }
        let collect = |x: &ShardedMovingIndex<TestLayout>| {
            let mut v = Vec::new();
            x.scan_keys(0, u128::MAX, |k, r| {
                v.push((k, r));
                true
            });
            v
        };
        assert_eq!(collect(&olc), collect(&exclusive), "full scans must agree");
    }

    #[test]
    fn olc_knob_survives_expiry_and_excludes_buffering() {
        let mut idx = index(64);
        idx.set_olc_writes(true);
        for i in 0..50u64 {
            idx.upsert(still(i, i as f64 * 18.0 + 2.0, 500.0, 10.0));
        }
        assert!(idx.expire_stale(200.0) > 0);
        assert!(idx.olc_writes(), "the knob survives the shard swap");
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            idx.set_buffered_writes(true)
        }));
        assert!(r.is_err(), "buffered writes must refuse to enable over OLC");
    }

    #[test]
    fn olc_concurrent_refreshes_overlap_and_converge() {
        // 4 writer threads refresh disjoint uid ranges in place (the OLC
        // fast path: all page I/O under the shard read lock) while 2
        // scanner threads stream the whole index. Afterwards the state
        // must equal a sequentially-built twin.
        use std::sync::atomic::AtomicBool;
        let mut idx = index(256);
        // Seed every object first so refreshes stay on the fast path.
        for i in 0..400u64 {
            idx.upsert(still(i, (i % 40) as f64 * 25.0 + 2.0, (i / 40) as f64 * 95.0 + 2.0, 10.0));
        }
        idx.set_olc_writes(true);
        let idx = Arc::new(idx);
        let stop = Arc::new(AtomicBool::new(false));
        let rounds = 30u64;
        let writers: Vec<_> = (0..4u64)
            .map(|w| {
                let idx = Arc::clone(&idx);
                std::thread::spawn(move || {
                    for r in 0..rounds {
                        for i in (w * 100)..(w * 100 + 100) {
                            let x = ((i * 13 + r * 7) % 49) as f64 * 20.0 + 3.0;
                            let y = ((i * 31 + r * 11) % 49) as f64 * 20.0 + 3.0;
                            idx.upsert(still(i, x, y, 10.0));
                        }
                    }
                })
            })
            .collect();
        let scanners: Vec<_> = (0..2)
            .map(|_| {
                let idx = Arc::clone(&idx);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    while !stop.load(Ordering::Relaxed) {
                        let mut seen = 0usize;
                        idx.scan_keys(0, u128::MAX, |_, _| {
                            seen += 1;
                            true
                        });
                        // Transient duplicates are the documented
                        // relaxation; vanishing objects are not.
                        assert!(seen >= 400, "scan lost objects: {seen}");
                        for i in (0..400u64).step_by(37) {
                            assert!(idx.get(UserId(i)).is_some(), "uid {i} vanished");
                        }
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for s in scanners {
            s.join().unwrap();
        }
        assert_eq!(idx.len(), 400);
        let twin = index(256);
        for w in 0..4u64 {
            for i in (w * 100)..(w * 100 + 100) {
                let r = rounds - 1;
                let x = ((i * 13 + r * 7) % 49) as f64 * 20.0 + 3.0;
                let y = ((i * 31 + r * 11) % 49) as f64 * 20.0 + 3.0;
                twin.upsert(still(i, x, y, 10.0));
            }
        }
        for i in 0..400u64 {
            assert_eq!(idx.get(UserId(i)), twin.get(UserId(i)), "uid {i}");
        }
        let collect = |x: &ShardedMovingIndex<TestLayout>| {
            let mut v = Vec::new();
            x.scan_keys(0, u128::MAX, |k, r| {
                v.push((k, r));
                true
            });
            v
        };
        assert_eq!(collect(&idx), collect(&twin), "quiesced scans must agree");
    }
}
