//! The leaf record stored for each moving object.
//!
//! The paper's leaf format is `⟨key, UID, x, y, vx, vy, t, Pntp⟩`; the key
//! lives in the B+-tree entry header and `Pntp` (a pointer to the user's
//! policy set) is the uid itself in our dense-id design, so the record
//! packs uid, position, velocity and update time into 28 bytes.

use peb_btree::RecordValue;
use peb_common::{MovingPoint, Point, UserId, Vec2};

/// On-disk moving-object record (28 bytes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectRecord {
    /// Dense user id (doubles as the paper's policy pointer `Pntp`).
    pub uid: u64,
    /// Reference position at `t_update`, x coordinate.
    pub x: f32,
    /// Reference position at `t_update`, y coordinate.
    pub y: f32,
    /// Velocity, x component.
    pub vx: f32,
    /// Velocity, y component.
    pub vy: f32,
    /// Timestamp of the update that produced this record.
    pub t_update: f32,
}

impl ObjectRecord {
    /// Narrow a live [`MovingPoint`] to the on-disk f32 record.
    pub fn from_moving_point(m: &MovingPoint) -> Self {
        ObjectRecord {
            uid: m.uid.0,
            x: m.pos.x as f32,
            y: m.pos.y as f32,
            vx: m.vel.x as f32,
            vy: m.vel.y as f32,
            t_update: m.t_update as f32,
        }
    }

    /// Widen back to the in-memory [`MovingPoint`] form.
    pub fn to_moving_point(&self) -> MovingPoint {
        MovingPoint::new(
            UserId(self.uid),
            Point::new(self.x as f64, self.y as f64),
            Vec2::new(self.vx as f64, self.vy as f64),
            self.t_update as f64,
        )
    }
}

impl RecordValue for ObjectRecord {
    const SIZE: usize = 28;

    fn write(&self, buf: &mut [u8]) {
        buf[0..8].copy_from_slice(&self.uid.to_le_bytes());
        buf[8..12].copy_from_slice(&self.x.to_le_bytes());
        buf[12..16].copy_from_slice(&self.y.to_le_bytes());
        buf[16..20].copy_from_slice(&self.vx.to_le_bytes());
        buf[20..24].copy_from_slice(&self.vy.to_le_bytes());
        buf[24..28].copy_from_slice(&self.t_update.to_le_bytes());
    }

    fn read(buf: &[u8]) -> Self {
        ObjectRecord {
            uid: u64::from_le_bytes(buf[0..8].try_into().unwrap()),
            x: f32::from_le_bytes(buf[8..12].try_into().unwrap()),
            y: f32::from_le_bytes(buf[12..16].try_into().unwrap()),
            vx: f32::from_le_bytes(buf[16..20].try_into().unwrap()),
            vy: f32::from_le_bytes(buf[20..24].try_into().unwrap()),
            t_update: f32::from_le_bytes(buf[24..28].try_into().unwrap()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_roundtrip() {
        let r = ObjectRecord { uid: 77, x: 1.5, y: -2.5, vx: 0.25, vy: -0.75, t_update: 42.0 };
        let mut buf = [0u8; ObjectRecord::SIZE];
        r.write(&mut buf);
        assert_eq!(ObjectRecord::read(&buf), r);
    }

    #[test]
    fn moving_point_roundtrip() {
        let m = MovingPoint::new(UserId(9), Point::new(10.5, 20.25), Vec2::new(1.5, -0.5), 60.0);
        let r = ObjectRecord::from_moving_point(&m);
        let back = r.to_moving_point();
        assert_eq!(back.uid, m.uid);
        assert_eq!(back.pos, m.pos);
        assert_eq!(back.vel, m.vel);
        assert_eq!(back.t_update, m.t_update);
    }

    #[test]
    fn leaf_fanout_matches_design() {
        // 16-byte key + 28-byte record = 44-byte stride -> 92 entries/page.
        assert_eq!(peb_btree::node::leaf_capacity(ObjectRecord::SIZE), 92);
    }
}
