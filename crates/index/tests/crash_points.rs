//! Deterministic crash-point matrix: kill the durable index at every
//! sampled disk-write site and prove recovery is exact.
//!
//! The harness runs one fixed mixed workload (batched inserts, updates,
//! removes, re-keys, message flushes, partition expiry, checkpoints, pool
//! flushes) in **probe mode** first, collecting the ordered trace of
//! crash-point labels — one entry per counted disk-page write. It then
//! re-runs the workload once per sampled kill point with the injector
//! armed at that op index, catches the injected panic, harvests the two
//! simulated platters, replays the log tail, and rebuilds the index with
//! [`ShardedMovingIndex::recover`].
//!
//! Every recovered index must match a **never-crashed twin** that
//! replayed exactly the first `C` mutation calls, where `C` is the ops
//! payload of the last durable `Commit` record: same length, same live
//! partitions, same point lookups, same full scans, byte-identical data
//! pages over the twin's page range once both flush, and identical
//! physical-I/O counters for a cold read-only probe.
//!
//! Sampling is stratified per label so all four crash-point classes
//! (log-page writes, data-page flushes, checkpoint writes, chain-spill
//! writes) are covered, with ≥ 50 distinct kill points total.

use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use peb_common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use peb_index::{KeyLayout, ShardedMovingIndex, TimePartitioning};
use peb_storage::{BufferPool, CrashPoint, IoStats, Wal, CRASH_SENTINEL, PAGE_SIZE};

/// Same minimal layout as the unit tests: `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂`.
#[derive(Debug, Clone, Copy)]
struct TestLayout;

const ZV_BITS: u32 = 20;
const UID_BITS: u32 = 32;

impl KeyLayout for TestLayout {
    fn zv_bits(&self) -> u32 {
        ZV_BITS
    }

    fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        ((tid as u128) << (ZV_BITS + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
    }

    fn partition_range(&self, tid: u8) -> (u128, u128) {
        (self.key(tid, 0, 0), self.key(tid, (1 << ZV_BITS) - 1, (1 << UID_BITS) - 1))
    }
}

/// Small pool so the workload evicts constantly — evictions are exactly
/// the data-page kill points the matrix wants to hit.
const POOL_FRAMES: usize = 32;

/// Highest uid the workload touches, for exhaustive point-get compares.
const UID_CEILING: u64 = 1150;

fn make_index(pool: Arc<BufferPool>) -> ShardedMovingIndex<TestLayout> {
    ShardedMovingIndex::new(
        pool,
        TestLayout,
        SpaceConfig::new(1000.0, 10, 1440.0),
        TimePartitioning::new(120.0, 2),
        3.0,
    )
}

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

/// One committed mutation call — the unit the WAL `Commit` counter names.
enum MutOp {
    Batch(Vec<MovingPoint>),
    Single(MovingPoint),
    Remove(u64),
    /// Flip ZV bit 0 of every uid divisible by 7 (stays in-partition).
    Rekey,
    FlushMsgs,
    Expire(f64),
}

/// A workload step: either one committed mutation or a pool-level action
/// that moves pages around without advancing the commit counter.
enum Action {
    Mut(MutOp),
    Checkpoint,
    FlushAll,
}

fn apply_mut(idx: &ShardedMovingIndex<TestLayout>, op: &MutOp) {
    match op {
        MutOp::Batch(pts) => {
            idx.upsert_batch(pts);
        }
        MutOp::Single(p) => idx.upsert(*p),
        MutOp::Remove(uid) => {
            idx.remove(UserId(*uid));
        }
        MutOp::Rekey => {
            idx.rekey_where(|uid, old| (uid.0 % 7 == 0).then_some(old ^ (1u128 << UID_BITS)));
        }
        MutOp::FlushMsgs => idx.flush_messages(),
        MutOp::Expire(now) => {
            idx.expire_stale(*now);
        }
    }
}

/// The fixed mixed workload. Inserts are concentrated at `t = 10` (one
/// partition tree) so its buffered message chain outgrows
/// `MAX_CHAIN_PAGES` and forces chain-spill kill points; later phases add
/// a second and third partition, point updates, removes, a re-key pass,
/// an explicit message flush, and a partition expiry, with checkpoints
/// and full pool flushes interleaved.
fn workload() -> Vec<Action> {
    let mut acts = Vec::new();
    // Phase 1: 720 users land in the t=10 partition in batches of 90.
    for b in 0..8u64 {
        let pts = (b * 90..(b + 1) * 90)
            .map(|i| still(i, (i % 48) as f64 * 20.0 + 3.0, (i / 48) as f64 * 60.0 + 3.0, 10.0))
            .collect();
        acts.push(Action::Mut(MutOp::Batch(pts)));
    }
    acts.push(Action::Checkpoint);
    // Phase 2: re-position the same users (same timestamp, new keys) —
    // each update is a tombstone + insert message, doubling chain load.
    for b in 0..6u64 {
        let pts = (b * 120..(b + 1) * 120)
            .map(|i| still(i, (i % 48) as f64 * 20.0 + 11.5, (i / 48) as f64 * 60.0 + 9.25, 10.0))
            .collect();
        acts.push(Action::Mut(MutOp::Batch(pts)));
    }
    acts.push(Action::FlushAll);
    // Phase 3: a second partition (t=70 → label 180), then re-key and
    // checkpoint while both partitions are live.
    for i in 800..820u64 {
        acts.push(Action::Mut(MutOp::Single(still(
            i,
            (i % 30) as f64 * 30.0 + 5.0,
            (i % 9) as f64 * 100.0 + 5.0,
            70.0,
        ))));
    }
    acts.push(Action::Mut(MutOp::Rekey));
    acts.push(Action::Checkpoint);
    // Phase 4: removes and an explicit flush of whatever chains remain.
    for i in 0..10u64 {
        acts.push(Action::Mut(MutOp::Remove(i * 3)));
    }
    acts.push(Action::Mut(MutOp::FlushMsgs));
    // Phase 5: a third partition (t=130 → label 240), then expire the
    // first two and keep committing afterwards.
    for b in 0..4u64 {
        let pts = (900 + b * 60..900 + (b + 1) * 60)
            .map(|i| still(i, (i % 45) as f64 * 22.0 + 1.0, (i / 45) as f64 * 40.0 + 1.0, 130.0))
            .collect();
        acts.push(Action::Mut(MutOp::Batch(pts)));
    }
    acts.push(Action::Mut(MutOp::Expire(190.0)));
    acts.push(Action::Checkpoint);
    for i in 820..830u64 {
        acts.push(Action::Mut(MutOp::Single(still(
            i,
            (i % 20) as f64 * 45.0 + 7.0,
            (i % 7) as f64 * 120.0 + 7.0,
            130.0,
        ))));
    }
    acts
}

fn mut_count(acts: &[Action]) -> u64 {
    acts.iter().filter(|a| matches!(a, Action::Mut(_))).count() as u64
}

fn run_workload(idx: &ShardedMovingIndex<TestLayout>, acts: &[Action]) {
    for a in acts {
        match a {
            Action::Mut(op) => apply_mut(idx, op),
            Action::Checkpoint => {
                idx.checkpoint();
            }
            Action::FlushAll => {
                idx.pool().flush_all();
            }
        }
    }
}

/// Run the workload in probe mode and return the full ordered trace of
/// crash-point labels (one per counted disk-page write).
fn probe_trace(acts: &[Action]) -> Vec<CrashPoint> {
    let pool = Arc::new(BufferPool::new(POOL_FRAMES));
    let inj = Arc::clone(pool.crash_injector());
    inj.set_probing(true);
    let mut idx = make_index(pool);
    idx.set_buffered_writes(true);
    idx.set_durable(true);
    run_workload(&idx, acts);
    inj.take_trace()
}

/// Never-crashed twin: a plain (non-durable) index that replays exactly
/// the first `c` committed mutation calls of the workload.
fn build_twin(acts: &[Action], c: u64) -> ShardedMovingIndex<TestLayout> {
    let mut idx = make_index(Arc::new(BufferPool::new(POOL_FRAMES)));
    idx.set_buffered_writes(true);
    let mut done = 0u64;
    for a in acts {
        if done >= c {
            break;
        }
        if let Action::Mut(op) = a {
            apply_mut(&idx, op);
            done += 1;
        }
    }
    assert_eq!(done, c, "log committed more ops than the workload contains");
    idx
}

/// Cold read-only probe: clear the pool, reset the ledgers, then do a
/// fixed sequence of scans and point gets. Returns the I/O counters —
/// identical structures must produce identical physical traffic.
fn cold_probe(idx: &ShardedMovingIndex<TestLayout>) -> (IoStats, usize) {
    idx.pool().clear();
    idx.pool().reset_stats();
    let mut seen = 0usize;
    idx.scan_keys(0, u128::MAX, |_, _| {
        seen += 1;
        true
    });
    for uid in (0..UID_CEILING).step_by(13) {
        let _ = idx.get(UserId(uid));
    }
    (idx.pool().stats(), seen)
}

/// Full equivalence check between a recovered index and its twin.
fn assert_matches_twin(
    back: &ShardedMovingIndex<TestLayout>,
    twin: &ShardedMovingIndex<TestLayout>,
    kill: u64,
) {
    assert_eq!(back.len(), twin.len(), "len @ kill {kill}");
    assert_eq!(back.live_partitions(), twin.live_partitions(), "partitions @ kill {kill}");
    for uid in 0..UID_CEILING {
        let (u, k) = (UserId(uid), kill);
        assert_eq!(back.current_key_of(u), twin.current_key_of(u), "key of {uid} @ kill {k}");
        assert_eq!(back.get(u), twin.get(u), "get {uid} @ kill {k}");
    }
    let collect = |x: &ShardedMovingIndex<TestLayout>| {
        let mut v = Vec::new();
        x.scan_keys(0, u128::MAX, |key, rec| {
            v.push((key, rec));
            true
        });
        v
    };
    assert_eq!(collect(back), collect(twin), "full scans @ kill {kill}");

    // Flush both sides and compare raw platters over the twin's page
    // range: committed state must be byte-identical. The recovered disk
    // may hold extra pages allocated by the op in flight at the crash.
    back.pool().flush_all();
    twin.pool().flush_all();
    let (back_disk, _) = back.pool().harvest_crash_state();
    let (twin_disk, _) = twin.pool().harvest_crash_state();
    assert!(
        back_disk.num_pages() >= twin_disk.num_pages(),
        "recovered disk lost pages @ kill {kill}"
    );
    for p in 0..twin_disk.num_pages() {
        let pid = peb_storage::PageId(p as u32);
        assert_eq!(
            back_disk.peek(pid).unwrap().bytes(0, PAGE_SIZE),
            twin_disk.peek(pid).unwrap().bytes(0, PAGE_SIZE),
            "data page {p} differs @ kill {kill}"
        );
    }

    // Cold-probe symmetry: same structure ⇒ same physical I/O.
    let (back_io, back_seen) = cold_probe(back);
    let (twin_io, twin_seen) = cold_probe(twin);
    assert_eq!(back_seen, twin_seen, "probe row count @ kill {kill}");
    assert_eq!(back_io, twin_io, "cold-probe IoStats @ kill {kill}");
}

/// Crash at disk-op `n`, harvest, recover, and return the rebuilt index
/// plus the committed-op count the log proved durable.
fn crash_and_recover(
    acts: &[Action],
    n: u64,
) -> (ShardedMovingIndex<TestLayout>, peb_storage::WalRecovery) {
    let pool = Arc::new(BufferPool::new(POOL_FRAMES));
    let inj = Arc::clone(pool.crash_injector());
    inj.arm(n);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut idx = make_index(Arc::clone(&pool));
        idx.set_buffered_writes(true);
        idx.set_durable(true);
        run_workload(&idx, acts);
    }));
    let payload = outcome.expect_err("armed run must crash");
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied())
        .unwrap_or("");
    assert!(msg.contains(CRASH_SENTINEL), "kill {n} raised a real panic: {msg}");
    inj.disarm();

    let (mut data, log) = pool.harvest_crash_state();
    let rec = peb_storage::recover(&mut data, &log);
    let wal = Wal::resume(log, &rec);
    let recovered_pool = Arc::new(BufferPool::from_recovered(POOL_FRAMES, 1, data, wal));
    let idx = ShardedMovingIndex::recover(
        recovered_pool,
        &rec,
        TestLayout,
        SpaceConfig::new(1000.0, 10, 1440.0),
        TimePartitioning::new(120.0, 2),
        3.0,
    );
    (idx, rec)
}

/// Stratified kill-point sample: up to 16 evenly spaced points per label
/// (every label must occur at least once), topped up with evenly spaced
/// global indices until at least 56 candidates are in the set.
fn sample_kill_points(trace: &[CrashPoint]) -> Vec<u64> {
    let mut set: BTreeSet<u64> = BTreeSet::new();
    for label in [
        CrashPoint::WalWrite,
        CrashPoint::PageFlush,
        CrashPoint::Checkpoint,
        CrashPoint::ChainSpill,
    ] {
        let idxs: Vec<u64> =
            trace.iter().enumerate().filter(|&(_, l)| *l == label).map(|(i, _)| i as u64).collect();
        assert!(!idxs.is_empty(), "workload never reaches a {label:?} kill point");
        let take = idxs.len().min(16);
        for j in 0..take {
            set.insert(idxs[j * idxs.len() / take]);
        }
    }
    let step = (trace.len() / 60).max(1);
    for i in (0..trace.len()).step_by(step) {
        if set.len() >= 56 {
            break;
        }
        set.insert(i as u64);
    }
    set.into_iter().collect()
}

/// The probe trace is a pure function of the workload: two runs must see
/// the identical label sequence, or "crash at op N" would not name one
/// machine state.
#[test]
fn crash_point_trace_is_deterministic() {
    let acts = workload();
    let a = probe_trace(&acts);
    let b = probe_trace(&acts);
    assert!(!a.is_empty(), "durable workload must hit the injector");
    assert_eq!(a, b, "probe traces diverged between identical runs");
    for label in [
        CrashPoint::WalWrite,
        CrashPoint::PageFlush,
        CrashPoint::Checkpoint,
        CrashPoint::ChainSpill,
    ] {
        assert!(a.contains(&label), "trace never hits {label:?}");
    }
}

/// The matrix itself: ≥ 50 distinct kill points across all four labels,
/// each recovering to a state indistinguishable from the never-crashed
/// twin at the same committed-op count.
#[test]
fn crash_matrix_recovers_at_every_kill_point() {
    let acts = workload();
    let total_muts = mut_count(&acts);
    let trace = probe_trace(&acts);
    let points = sample_kill_points(&trace);
    assert!(points.len() >= 50, "only {} kill points sampled", points.len());

    // Injected panics are expected here by the dozen; silence the
    // default hook so the run is not a wall of fake backtraces, but
    // restore it even when an assertion inside the loop fails.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut twins: Vec<(u64, ShardedMovingIndex<TestLayout>)> = Vec::new();
        for &n in &points {
            let (back, rec) = crash_and_recover(&acts, n);
            assert!(rec.commits <= total_muts, "log invented commits @ kill {n}");
            assert_eq!(back.committed_ops(), rec.commits, "ops counter @ kill {n}");
            if rec.commits == 0 {
                // Crash inside durability enrollment itself: the floor
                // is the documented pre-durable state — here, empty.
                // Structural compare only; the platters legitimately
                // differ (recovery re-registers fresh root pages).
                assert!(back.is_empty(), "pre-first-commit crash must recover empty @ kill {n}");
                assert!(back.live_partitions().is_empty(), "partition ghosts @ kill {n}");
                continue;
            }
            let twin = match twins.iter().position(|(c, _)| *c == rec.commits) {
                Some(i) => &twins[i].1,
                None => {
                    twins.push((rec.commits, build_twin(&acts, rec.commits)));
                    &twins.last().unwrap().1
                }
            };
            assert_matches_twin(&back, twin, n);
        }
    }));
    std::panic::set_hook(prev_hook);
    if let Err(e) = result {
        std::panic::resume_unwind(e);
    }
}
