//! Deadline-bounded scans at the index layer, and the seeded regression
//! for deadline expiry racing an in-flight migration.
//!
//! Two contracts under test:
//!
//! * [`ShardedMovingIndex::try_scan_keys_multi_deadline`] delivers an
//!   exact prefix with an honest per-partition completeness tag — the
//!   partitions it finished are marked complete, the one the budget died
//!   in and everything after are not, and the records handed out match
//!   the unbounded scan record-for-record.
//! * A query whose deadline fires **while a migration span is in flight**
//!   (frozen between `mig_started` and `mig_done` via the seeded
//!   scheduler's `site:mig-span` gate) degrades to an all-incomplete
//!   answer instead of blocking on the writer — and once the writer is
//!   released, the epoch is balanced and the migrated uid exists exactly
//!   once. Cancellation can never strand the epoch or drop/duplicate an
//!   object, because cancellation is read-side only: the epoch belongs
//!   to writers, who rebalance it on every path (including errors).

use std::sync::Arc;

use peb_btree::ScanTermination;
use peb_common::{sched, Deadline, MovingPoint, Point, SpaceConfig, UserId, Vec2};
use peb_index::{KeyLayout, ShardedMovingIndex, TimePartitioning};
use peb_storage::BufferPool;

/// Same minimal layout as the unit tests: `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂`.
#[derive(Debug, Clone, Copy)]
struct TestLayout;

const ZV_BITS: u32 = 20;
const UID_BITS: u32 = 32;

impl KeyLayout for TestLayout {
    fn zv_bits(&self) -> u32 {
        ZV_BITS
    }

    fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        ((tid as u128) << (ZV_BITS + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
    }

    fn partition_range(&self, tid: u8) -> (u128, u128) {
        (self.key(tid, 0, 0), self.key(tid, (1 << ZV_BITS) - 1, (1 << UID_BITS) - 1))
    }
}

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

fn make() -> ShardedMovingIndex<TestLayout> {
    ShardedMovingIndex::new(
        Arc::new(BufferPool::new(64)),
        TestLayout,
        SpaceConfig::new(1000.0, 10, 1440.0),
        TimePartitioning::new(120.0, 2),
        3.0,
    )
}

/// Two live partitions: uids 0..200 updated at t=10 (partition of label
/// 120) and uids 200..400 at t=130 (label 240).
fn populate_two_partitions(idx: &ShardedMovingIndex<TestLayout>) {
    for i in 0..200u64 {
        idx.upsert(still(i, (i % 31) as f64 * 32.0 + 1.0, (i / 31) as f64 * 140.0 + 1.0, 10.0));
    }
    for i in 200..400u64 {
        idx.upsert(still(i, (i % 29) as f64 * 34.0 + 2.0, (i / 29) as f64 * 60.0 + 2.0, 130.0));
    }
}

fn collect_all(idx: &ShardedMovingIndex<TestLayout>) -> Vec<(u128, u64)> {
    let mut out = Vec::new();
    idx.scan_keys(0, u128::MAX, |k, r| {
        out.push((k, r.uid));
        true
    });
    out
}

#[test]
fn unbounded_deadline_scan_matches_the_plain_scan() {
    let idx = make();
    populate_two_partitions(&idx);
    let want = collect_all(&idx);
    assert_eq!(want.len(), 400);
    let clock = idx.pool().clock().clone();
    let mut got = Vec::new();
    let report = idx
        .try_scan_keys_multi_deadline(&[(0, u128::MAX)], &Deadline::unbounded(&clock), |k, r| {
            got.push((k, r.uid));
            true
        })
        .unwrap();
    assert_eq!(report.termination, ScanTermination::Complete);
    assert!(report.is_complete());
    assert_eq!(report.complete_partitions(), report.partitions.len());
    // All three rotating partitions intersect [0, MAX] — including the
    // empty one, which completes trivially.
    assert_eq!(report.partitions.len(), 3);
    assert!(report.partitions.iter().all(|(_, c)| *c));
    assert_eq!(got, want);
}

#[test]
fn expiry_tags_the_partitions_the_scan_never_finished() {
    let idx = make();
    populate_two_partitions(&idx);
    let want = collect_all(&idx); // also warms the pool
    let clock = idx.pool().clock().clone();

    // A budget that dies inside the first partition: the report must say
    // so, and the records delivered must be an exact prefix.
    let deadline = Deadline::after(&clock, 2);
    let mut got = Vec::new();
    let report = idx
        .try_scan_keys_multi_deadline(&[(0, u128::MAX)], &deadline, |k, r| {
            got.push((k, r.uid));
            true
        })
        .unwrap();
    assert_eq!(report.termination, ScanTermination::Expired);
    assert!(!report.is_complete());
    assert_eq!(report.partitions.len(), 3);
    // Two ticks cannot finish either *live* partition (the empty one may
    // complete trivially).
    assert!(report.complete_partitions() <= 1);
    assert!(got.len() < want.len());
    assert_eq!(got[..], want[..got.len()], "partial answers are exact prefixes");

    // A budget that finishes every earlier partition but dies in the
    // last *live* one: per-partition honesty, not all-or-nothing.
    // Measure each partition's warm cost, then grant one tick more than
    // everything before the last live partition.
    let tids: Vec<u8> = report.partitions.iter().map(|(t, _)| *t).collect();
    let cost_of = |tid: u8| {
        let (plo, phi) = idx.layout().partition_range(tid);
        let t0 = clock.now();
        idx.try_scan_keys_multi_deadline(&[(plo, phi)], &Deadline::unbounded(&clock), |_, _| true)
            .unwrap();
        clock.now() - t0
    };
    let costs: Vec<u64> = tids.iter().map(|&t| cost_of(t)).collect();
    let last_live = costs.iter().rposition(|&c| c > 2).expect("a live partition exists");
    assert!(last_live > 0, "some partition precedes the last live one");
    let budget: u64 = costs[..last_live].iter().sum::<u64>() + 1;
    let (_, before_hi) = idx.layout().partition_range(tids[last_live - 1]);
    let full_before: usize = want.iter().filter(|(k, _)| *k <= before_hi).count();

    let deadline = Deadline::after(&clock, budget);
    let mut got = Vec::new();
    let report = idx
        .try_scan_keys_multi_deadline(&[(0, u128::MAX)], &deadline, |k, r| {
            got.push((k, r.uid));
            true
        })
        .unwrap();
    assert_eq!(report.termination, ScanTermination::Expired);
    assert_eq!(
        report.complete_partitions(),
        last_live,
        "everything before it finished: {report:?}"
    );
    assert!(report.partitions[..last_live].iter().all(|(_, c)| *c));
    assert!(report.partitions[last_live..].iter().all(|(_, c)| !*c));
    assert!(got.len() >= full_before, "the complete partitions were fully delivered");
    assert!(got.len() < want.len());
    assert_eq!(got[..], want[..got.len()]);
}

#[test]
fn single_partition_deadline_scan_streams_with_early_exit() {
    let idx = make();
    populate_two_partitions(&idx);
    let clock = idx.pool().clock().clone();
    let (lo, hi) = idx.layout().partition_range(idx.live_partitions()[0].0);
    let mut n = 0usize;
    let report = idx
        .try_scan_keys_deadline(lo, hi, &Deadline::unbounded(&clock), |_, _| {
            n += 1;
            n < 10
        })
        .unwrap();
    assert_eq!(report.termination, ScanTermination::Stopped);
    assert_eq!(n, 10);
    assert_eq!(report.partitions.len(), 1);
    assert!(!report.partitions[0].1, "a stopped partition is not complete");
}

/// The seeded mid-migration regression (the satellite): freeze a writer
/// inside its migration span, expire a multi-shard scan against the
/// frozen epoch, and prove (a) the expired scan returns all-incomplete
/// instead of waiting for the writer, (b) releasing the writer rebalances
/// the epoch, (c) the migrated uid is neither dropped nor duplicated.
#[test]
fn expired_scan_degrades_while_a_migration_is_in_flight() {
    let idx = Arc::new(make());
    populate_two_partitions(&idx);
    let clock = idx.pool().clock().clone();

    // Freeze the next migration span at `site:mig-span` (0 permits: the
    // first arrival parks). The guard wires disable-on-drop so a failing
    // assert cannot wedge the parked writer.
    let _sched = sched::SeededSection::new(0xD15C);
    sched::close(sched::site_name(sched::Site::MigSpan), 0);

    // uid 7 last reported at t=10 (label 120); reporting at t=70 rolls it
    // into the other partition — a cross-partition migration.
    let writer = {
        let idx = Arc::clone(&idx);
        std::thread::spawn(move || {
            idx.upsert(still(7, 110.0, 110.0, 70.0));
        })
    };
    while !sched::is_blocked(sched::site_name(sched::Site::MigSpan)) {
        std::thread::yield_now();
    }

    // The writer is parked mid-span: epoch unbalanced, uid 7 in no shard.
    // Expire a multi-shard scan's budget and issue it: it must return,
    // not block behind the frozen migration.
    let deadline = Deadline::after(&clock, 2);
    clock.advance(10);
    assert!(deadline.expired());
    let mut seen = 0usize;
    let report = idx
        .try_scan_keys_multi_deadline(&[(0, u128::MAX)], &deadline, |_, _| {
            seen += 1;
            true
        })
        .unwrap();
    assert_eq!(report.termination, ScanTermination::Expired);
    assert_eq!(seen, 0, "an expired scan racing a migration serves nothing, explicitly");
    assert!(report.partitions.iter().all(|(_, c)| !*c));

    // Release the writer; the span must land and rebalance the epoch.
    sched::open(sched::site_name(sched::Site::MigSpan));
    writer.join().unwrap();

    // No strand: an unbounded scan completes (it would spin forever on an
    // unbalanced epoch), and uid 7 exists exactly once, at its new home.
    let all = collect_all(&idx);
    assert_eq!(all.iter().filter(|(_, uid)| *uid == 7).count(), 1, "no drop, no duplicate");
    assert_eq!(all.len(), 400);
    assert_eq!(idx.get(UserId(7)).unwrap().pos, Point::new(110.0, 110.0));
    let clock2 = idx.pool().clock().clone();
    let report = idx
        .try_scan_keys_multi_deadline(&[(0, u128::MAX)], &Deadline::unbounded(&clock2), |_, _| true)
        .unwrap();
    assert!(report.is_complete(), "the epoch is balanced: full scans complete again");
}
