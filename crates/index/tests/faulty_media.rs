//! Faulty media at the index layer: the typed-error stack end to end.
//!
//! [`ShardedMovingIndex`] sits on the buffer pool's retry/repair/
//! quarantine machinery. These tests drive the index's fallible API
//! (`try_upsert` / `try_get` / `try_remove` / `try_scan_keys`) over an
//! injected [`FaultKind`] schedule and prove the graceful-degradation
//! contract of the fault-tolerance chapter:
//!
//! * on unrepairable media every operation returns a typed
//!   [`IndexError::Io`] — no panic, no garbage result — and service
//!   recovers the moment the media does;
//! * in durable mode the seeded fault mix (transients, bit rot, grown
//!   bad sectors) is absorbed by retry, WAL read-repair, and quarantine:
//!   query answers are **identical to a fault-free twin**;
//! * a fault escaping mid-migration leaves the scan epoch balanced, so
//!   later scans neither hang nor spin;
//! * the whole battery is deterministic run-to-run.

use std::sync::Arc;

use peb_common::{MovingPoint, Point, SpaceConfig, UserId, Vec2};
use peb_index::{IndexError, KeyLayout, ShardedMovingIndex, TimePartitioning};
use peb_storage::{BufferPool, FaultStats, IoFault, PageId};

/// Same minimal layout as the unit tests: `[TID]₂ ⊕ [ZV]₂ ⊕ [UID]₂`.
#[derive(Debug, Clone, Copy)]
struct TestLayout;

const ZV_BITS: u32 = 20;
const UID_BITS: u32 = 32;

impl KeyLayout for TestLayout {
    fn zv_bits(&self) -> u32 {
        ZV_BITS
    }

    fn key(&self, tid: u8, zv: u64, uid: u64) -> u128 {
        ((tid as u128) << (ZV_BITS + UID_BITS)) | ((zv as u128) << UID_BITS) | uid as u128
    }

    fn partition_range(&self, tid: u8) -> (u128, u128) {
        (self.key(tid, 0, 0), self.key(tid, (1 << ZV_BITS) - 1, (1 << UID_BITS) - 1))
    }
}

const USERS: u64 = 240;

fn still(uid: u64, x: f64, y: f64, t: f64) -> MovingPoint {
    MovingPoint::new(UserId(uid), Point::new(x, y), Vec2::ZERO, t)
}

fn make(durable: bool) -> (Arc<BufferPool>, ShardedMovingIndex<TestLayout>) {
    let pool = Arc::new(BufferPool::new(64));
    pool.set_durable(durable);
    let idx = ShardedMovingIndex::new(
        Arc::clone(&pool),
        TestLayout,
        SpaceConfig::new(1000.0, 10, 1440.0),
        TimePartitioning::new(120.0, 2),
        3.0,
    );
    (pool, idx)
}

/// Deterministic population: `USERS` users on a grid at `t = 10`.
fn populate(idx: &ShardedMovingIndex<TestLayout>) {
    for i in 0..USERS {
        idx.upsert(still(i, (i % 31) as f64 * 32.0 + 1.0, (i / 31) as f64 * 100.0 + 1.0, 10.0));
    }
}

/// Every sector (allocated or not) becomes permanently unreadable.
fn scorch_the_media(pool: &BufferPool) {
    pool.with_fault_injector(|f| {
        for p in 0..4096 {
            f.mark_bad_sector(PageId(p));
        }
    });
}

/// Sorted uids visible in one full key-range scan.
fn scan_all(idx: &ShardedMovingIndex<TestLayout>) -> Result<Vec<u64>, IndexError> {
    let mut uids = Vec::new();
    idx.try_scan_keys(0, u128::MAX, |k, _| {
        uids.push((k & ((1u128 << UID_BITS) - 1)) as u64);
        true
    })?;
    uids.sort_unstable();
    Ok(uids)
}

#[test]
fn scorched_media_surfaces_typed_errors_and_service_recovers() {
    let (pool, idx) = make(false);
    populate(&idx);
    pool.flush_all();
    pool.clear();
    let want_scan = scan_all(&idx).expect("clean media");
    let want_get = idx.try_get(UserId(7)).expect("clean media");
    pool.clear();

    scorch_the_media(&pool);
    // Reads, scans, and writes all fail typed — never panic, never lie.
    assert!(matches!(idx.try_get(UserId(7)), Err(IndexError::Io(IoFault::BadSector { .. }))));
    assert!(matches!(scan_all(&idx), Err(IndexError::Io(IoFault::BadSector { .. }))));
    assert!(matches!(
        idx.try_upsert(still(7, 500.0, 500.0, 11.0)),
        Err(IndexError::Io(IoFault::BadSector { .. }))
    ));
    assert!(matches!(idx.try_remove(UserId(9)), Err(IndexError::Io(IoFault::BadSector { .. }))));

    // The drive is swapped: full service returns. The failed upsert and
    // remove left uids 7 and 9 unmapped (documented partial state), so
    // re-issue them before comparing against the pre-fault answers.
    pool.with_fault_injector(|f| f.clear());
    idx.try_upsert(still(7, 7.0 * 32.0 + 1.0, 1.0, 10.0)).expect("healed media accepts writes");
    idx.try_upsert(still(9, 9.0 * 32.0 + 1.0, 1.0, 10.0)).expect("healed media accepts writes");
    assert_eq!(idx.try_get(UserId(7)).expect("healed"), want_get);
    assert_eq!(scan_all(&idx).expect("healed"), want_scan);
    assert!(pool.fault_stats().surfaced_errors >= 4, "each failure was ledgered");
}

/// One deterministic read/update/scan battery; every outcome recorded.
type Battery = (Vec<Result<Option<MovingPoint>, IndexError>>, Result<Vec<u64>, IndexError>);

fn run_battery(pool: &BufferPool, idx: &ShardedMovingIndex<TestLayout>) -> Battery {
    let mut gets = Vec::with_capacity(USERS as usize + 8);
    for i in 0..USERS {
        gets.push(idx.try_get(UserId(i)));
    }
    // Cold-start between phases: each phase re-fetches its pages from
    // the (possibly faulty) medium instead of hitting warm frames.
    pool.clear();
    // A sprinkle of updates (same partition, new position) — each one
    // reads leaf pages on the way down, so repairs fire here too.
    for i in (0..USERS).step_by(24) {
        let r = idx.try_upsert(still(i, (i % 17) as f64 * 50.0 + 5.0, 400.0, 11.0));
        gets.push(r.map(|()| None));
    }
    pool.clear();
    for i in (0..USERS).step_by(24) {
        gets.push(idx.try_get(UserId(i)));
    }
    pool.clear();
    (gets, scan_all(idx))
}

#[test]
fn durable_mode_absorbs_the_seeded_mix_and_matches_the_twin() {
    // Twin first: same build, same battery, clean media.
    let (twin_pool, twin) = make(true);
    populate(&twin);
    twin_pool.flush_all();
    twin_pool.clear();
    let want = run_battery(&twin_pool, &twin);
    assert_eq!(twin_pool.fault_stats(), FaultStats::default());
    assert!(want.0.iter().all(Result::is_ok) && want.1.is_ok());

    // Faulted: transients, bit rot, and grown bad sectors sprayed over
    // the cold battery's global read ordinals.
    let (pool, idx) = make(true);
    populate(&idx);
    pool.flush_all();
    pool.clear();
    pool.with_fault_injector(|f| f.arm_seeded_read_schedule(0xFA17_ED15, 36, 48));
    let got = run_battery(&pool, &idx);

    assert_eq!(got, want, "repaired answers must be indistinguishable from the twin's");
    let stats = pool.fault_stats();
    let fired = pool.with_fault_injector(|f| f.injected());
    assert!(fired >= 12, "schedule too sparse: only {fired} faults fired");
    assert!(stats.transient_retries > 0, "transient leg never exercised");
    assert!(stats.repairs_attempted > 0, "repair leg never exercised");
    assert_eq!(stats.surfaced_errors, 0, "durable mode absorbed everything");
    assert_eq!(stats.repairs_attempted, stats.repairs_succeeded + stats.quarantines);
}

#[test]
fn faulty_batteries_are_deterministic_run_to_run() {
    let run = || {
        let (pool, idx) = make(true);
        populate(&idx);
        pool.flush_all();
        pool.clear();
        pool.with_fault_injector(|f| f.arm_seeded_read_schedule(0x0DD5_0C3E, 36, 48));
        let battery = run_battery(&pool, &idx);
        let trace = pool.with_fault_injector(|f| f.trace().to_vec());
        (battery, trace, pool.fault_stats())
    };
    let a = run();
    let b = run();
    assert_eq!(a.0, b.0, "outcomes diverge");
    assert_eq!(a.1, b.1, "fired-fault traces diverge");
    assert_eq!(a.2, b.2, "fault ledgers diverge");
}

#[test]
fn a_fault_mid_migration_leaves_the_scan_epoch_balanced() {
    let (pool, idx) = make(false);
    populate(&idx);
    // Age user 5 into the next partition window so its upsert takes the
    // cross-shard migration slow path (evict from old shard, insert into
    // new) — then fail that path's first page read.
    pool.flush_all();
    pool.clear();
    scorch_the_media(&pool);
    let err = idx.try_upsert(still(5, 100.0, 100.0, 130.0));
    assert!(matches!(err, Err(IndexError::Io(IoFault::BadSector { .. }))));

    // The regression under test: an error escaping after `mig_started`
    // was bumped must still bump `mig_done`, or every multi-shard scan
    // would burn its epoch retries forever after. Heal the media and
    // prove scans still run clean and the index stays usable.
    pool.with_fault_injector(|f| f.clear());
    let uids = scan_all(&idx).expect("scan after failed migration");
    assert!(uids.len() >= (USERS as usize) - 1, "at most the in-flight uid may be missing");
    idx.try_upsert(still(5, 100.0, 100.0, 130.0)).expect("healed media accepts the migration");
    assert!(idx.try_get(UserId(5)).expect("healed").is_some());
}
