//! Fixed-size disk pages with little-endian scalar accessors and a
//! whole-page checksum ([`Page::seal`] / [`Page::verify`]) the simulated
//! device uses to detect media corruption.

/// Disk page size in bytes (the paper's setting).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page on the simulated disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel "no page" value used for absent sibling/child pointers.
    pub const INVALID: PageId = PageId(u32::MAX);

    /// Whether this id refers to a real page (is not the sentinel).
    pub fn is_valid(&self) -> bool {
        *self != PageId::INVALID
    }
}

/// Number of machine words ([`u64`]) in a page; the versioned-read mirror
/// copies pages word-at-a-time through atomics at this granularity.
pub const PAGE_WORDS: usize = PAGE_SIZE / 8;

/// Outcome of one *physical* page read at the device layer, after the
/// stored bytes were checked against the page's seal (see
/// [`crate::disk::DiskSim::read_outcome`]).
///
/// The typed-error mirror of this enum is [`crate::disk::IoFault`]; the
/// outcome form exists so device-level code can name the clean case and
/// the three failure cases in one `match` without inventing a sentinel.
pub enum ReadOutcome {
    /// The read returned data whose checksum matches the page's seal.
    Clean(Page),
    /// The device failed transiently; the stored data is intact and an
    /// immediate retry may succeed.
    Transient,
    /// The sector is permanently unreadable (marked bad, or the id was
    /// never allocated).
    BadSector,
    /// The read returned data, but its checksum does not match the seal
    /// taken at the last write — silent corruption, detected.
    Mismatch {
        /// The seal recorded when the page was last written.
        expected: u64,
        /// The checksum of the bytes the device actually returned.
        found: u64,
    },
}

/// A 4 KB page. Scalar accessors read/write little-endian values at byte
/// offsets; callers (the B+-tree node layout) are responsible for offsets
/// staying in bounds, which the accessors assert. Equality is byte-wise
/// over the full content.
#[derive(Clone, PartialEq, Eq)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl std::fmt::Debug for Page {
    /// Compact form — first word and seal, never the 4 KB body (pages
    /// appear in `Result`s whose `Err` arms tests assert with `{:?}`).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Page {{ head: {:#018x}, seal: {:#018x} }}", self.get_u64(0), self.seal())
    }
}

macro_rules! scalar_accessors {
    ($get:ident, $put:ident, $ty:ty) => {
        #[doc = concat!("Read a little-endian `", stringify!($ty), "` at byte offset `off`.")]
        #[inline]
        pub fn $get(&self, off: usize) -> $ty {
            const N: usize = std::mem::size_of::<$ty>();
            <$ty>::from_le_bytes(self.data[off..off + N].try_into().unwrap())
        }

        #[doc = concat!("Write `v` as a little-endian `", stringify!($ty), "` at byte offset `off`.")]
        #[inline]
        pub fn $put(&mut self, off: usize, v: $ty) {
            const N: usize = std::mem::size_of::<$ty>();
            self.data[off..off + N].copy_from_slice(&v.to_le_bytes());
        }
    };
}

impl Page {
    /// A zero-filled page.
    pub fn new() -> Self {
        Page { data: Box::new([0u8; PAGE_SIZE]) }
    }

    scalar_accessors!(get_u8, put_u8, u8);
    scalar_accessors!(get_u16, put_u16, u16);
    scalar_accessors!(get_u32, put_u32, u32);
    scalar_accessors!(get_u64, put_u64, u64);
    scalar_accessors!(get_u128, put_u128, u128);
    scalar_accessors!(get_f32, put_f32, f32);
    scalar_accessors!(get_f64, put_f64, f64);

    /// Read a [`PageId`] (stored as a little-endian `u32`) at `off`.
    #[inline]
    pub fn get_page_id(&self, off: usize) -> PageId {
        PageId(self.get_u32(off))
    }

    /// Write a [`PageId`] (as a little-endian `u32`) at `off`.
    #[inline]
    pub fn put_page_id(&mut self, off: usize, pid: PageId) {
        self.put_u32(off, pid.0);
    }

    /// Borrow `len` raw bytes starting at `off`.
    #[inline]
    pub fn bytes(&self, off: usize, len: usize) -> &[u8] {
        &self.data[off..off + len]
    }

    /// Mutably borrow `len` raw bytes starting at `off`.
    #[inline]
    pub fn bytes_mut(&mut self, off: usize, len: usize) -> &mut [u8] {
        &mut self.data[off..off + len]
    }

    /// Shift `len` bytes at `src` to `dst` within the page (memmove), used
    /// by node insert/remove in the B+-tree.
    #[inline]
    pub fn shift(&mut self, src: usize, dst: usize, len: usize) {
        self.data.copy_within(src..src + len, dst);
    }

    /// Word `i` of the page in native endianness (`i < `[`PAGE_WORDS`]).
    ///
    /// Words are an opaque transport format for whole-page copies (the
    /// versioned-read mirror stores pages as atomic words); they round-trip
    /// through [`Page::set_word`] bit-exactly on any platform but carry no
    /// cross-platform meaning of their own — use the little-endian scalar
    /// accessors for field access.
    #[inline]
    pub fn word(&self, i: usize) -> u64 {
        u64::from_ne_bytes(self.data[i * 8..i * 8 + 8].try_into().unwrap())
    }

    /// Overwrite word `i` with a value previously read by [`Page::word`].
    #[inline]
    pub fn set_word(&mut self, i: usize, w: u64) {
        self.data[i * 8..i * 8 + 8].copy_from_slice(&w.to_ne_bytes());
    }

    /// Fill the whole page from an atomic word image of length
    /// [`PAGE_WORDS`] (relaxed loads — callers supply the fences, see the
    /// pool's mirror). The bulk loop is what makes a 4 KB optimistic copy
    /// cheap; per-word [`Page::set_word`] calls cost an order of magnitude
    /// more in unoptimized builds.
    #[inline]
    pub fn load_atomic_words(&mut self, words: &[std::sync::atomic::AtomicU64]) {
        debug_assert_eq!(words.len(), PAGE_WORDS);
        for (chunk, w) in self.data.chunks_exact_mut(8).zip(words) {
            chunk.copy_from_slice(&w.load(std::sync::atomic::Ordering::Relaxed).to_ne_bytes());
        }
    }

    /// FNV-1a checksum of the full 4 KB content — the page's **seal**.
    /// The simulated disk computes it on every physical write and stores
    /// it in a catalog *separate from the data* (the ZFS / T10-DIF
    /// placement: a checksum stored inside the sector it covers cannot
    /// detect a dropped or torn write, because the stale sector carries a
    /// stale-but-self-consistent checksum). Same hand-rolled FNV-1a as
    /// the WAL record checksum ([`crate::wal::fnv1a`]).
    #[inline]
    pub fn seal(&self) -> u64 {
        crate::wal::fnv1a(&self.data[..])
    }

    /// Whether the page's current content matches a seal taken earlier —
    /// the verification half of [`Page::seal`].
    #[inline]
    pub fn verify(&self, seal: u64) -> bool {
        self.seal() == seal
    }

    /// Publish the whole page into an atomic word image of length
    /// [`PAGE_WORDS`] (relaxed stores — callers supply the fences).
    #[inline]
    pub fn store_atomic_words(&self, words: &[std::sync::atomic::AtomicU64]) {
        debug_assert_eq!(words.len(), PAGE_WORDS);
        for (chunk, w) in self.data.chunks_exact(8).zip(words) {
            let v = u64::from_ne_bytes(chunk.try_into().unwrap());
            w.store(v, std::sync::atomic::Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_is_zeroed() {
        let p = Page::new();
        assert_eq!(p.get_u128(0), 0);
        assert_eq!(p.get_u64(PAGE_SIZE - 8), 0);
    }

    #[test]
    fn scalar_roundtrips() {
        let mut p = Page::new();
        p.put_u8(0, 0xAB);
        p.put_u16(1, 0xBEEF);
        p.put_u32(3, 0xDEADBEEF);
        p.put_u64(7, u64::MAX - 1);
        p.put_u128(15, u128::MAX / 3);
        p.put_f32(31, -1.5);
        p.put_f64(35, 1234.5678);
        assert_eq!(p.get_u8(0), 0xAB);
        assert_eq!(p.get_u16(1), 0xBEEF);
        assert_eq!(p.get_u32(3), 0xDEADBEEF);
        assert_eq!(p.get_u64(7), u64::MAX - 1);
        assert_eq!(p.get_u128(15), u128::MAX / 3);
        assert_eq!(p.get_f32(31), -1.5);
        assert_eq!(p.get_f64(35), 1234.5678);
    }

    #[test]
    fn page_id_roundtrip_and_sentinel() {
        let mut p = Page::new();
        p.put_page_id(100, PageId(42));
        assert_eq!(p.get_page_id(100), PageId(42));
        assert!(PageId(42).is_valid());
        assert!(!PageId::INVALID.is_valid());
    }

    #[test]
    fn shift_moves_entries() {
        let mut p = Page::new();
        for i in 0..4u32 {
            p.put_u32(i as usize * 4, i + 1);
        }
        // Open a hole at slot 1: shift slots 1..4 right by one slot.
        p.shift(4, 8, 12);
        p.put_u32(4, 99);
        assert_eq!((0..5).map(|i| p.get_u32(i * 4)).collect::<Vec<_>>(), vec![1, 99, 2, 3, 4]);
    }

    #[test]
    fn words_round_trip_whole_pages() {
        let mut src = Page::new();
        src.put_u128(0, u128::MAX / 7);
        src.put_u64(4088, 0xFEED_F00D);
        src.put_u8(1234, 0x5A);
        let mut dst = Page::new();
        for i in 0..PAGE_WORDS {
            dst.set_word(i, src.word(i));
        }
        assert_eq!(dst.get_u128(0), u128::MAX / 7);
        assert_eq!(dst.get_u64(4088), 0xFEED_F00D);
        assert_eq!(dst.get_u8(1234), 0x5A);
    }

    #[test]
    fn seal_round_trips_and_detects_change() {
        let mut p = Page::new();
        p.put_u64(0, 42);
        p.put_u128(2048, u128::MAX / 5);
        let seal = p.seal();
        assert!(p.verify(seal));
        p.put_u8(1000, 1);
        assert!(!p.verify(seal), "a one-byte change must break the seal");
        p.put_u8(1000, 0);
        assert!(p.verify(seal), "restoring the byte restores the seal");
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_access_panics() {
        let p = Page::new();
        let _ = p.get_u64(PAGE_SIZE - 4);
    }
}
