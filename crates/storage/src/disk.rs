//! The simulated disk: an append-allocated array of pages that counts every
//! physical access.
//!
//! Substitution note (see DESIGN.md): the paper ran on a real PC and
//! reported page I/Os; we count the same events on an in-memory "disk",
//! which preserves the metric while keeping experiments deterministic.

use crate::page::{Page, PageId};

/// Physical page store with access counters.
///
/// `Clone` copies the entire page array and the counters — the crash-point
/// harness uses it to harvest the durable state of a "crashed" pool.
#[derive(Clone)]
pub struct DiskSim {
    pages: Vec<Page>,
    reads: u64,
    writes: u64,
}

impl Default for DiskSim {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskSim {
    /// An empty disk with zeroed access counters.
    pub fn new() -> Self {
        DiskSim { pages: Vec::new(), reads: 0, writes: 0 }
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&mut self) -> PageId {
        let pid = PageId(self.pages.len() as u32);
        self.pages.push(Page::new());
        pid
    }

    /// Physically read a page (counted).
    pub fn read(&mut self, pid: PageId) -> Page {
        self.reads += 1;
        self.pages[pid.0 as usize].clone()
    }

    /// Physically write a page (counted).
    pub fn write(&mut self, pid: PageId, page: &Page) {
        self.writes += 1;
        self.pages[pid.0 as usize] = page.clone();
    }

    /// Number of pages allocated so far.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Borrow a page image without counting an access. Recovery uses this
    /// to scan the log region and to compare disks byte-for-byte; it is
    /// **not** part of the measured I/O path.
    pub fn peek(&self, pid: PageId) -> &Page {
        &self.pages[pid.0 as usize]
    }

    /// Physical page reads since the last counter reset.
    pub fn physical_reads(&self) -> u64 {
        self.reads
    }

    /// Physical page writes since the last counter reset.
    pub fn physical_writes(&self) -> u64 {
        self.writes
    }

    /// Zero both access counters.
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential() {
        let mut d = DiskSim::new();
        assert_eq!(d.allocate(), PageId(0));
        assert_eq!(d.allocate(), PageId(1));
        assert_eq!(d.num_pages(), 2);
    }

    #[test]
    fn reads_and_writes_are_counted() {
        let mut d = DiskSim::new();
        let pid = d.allocate();
        let mut p = d.read(pid);
        p.put_u64(0, 7);
        d.write(pid, &p);
        assert_eq!(d.physical_reads(), 1);
        assert_eq!(d.physical_writes(), 1);
        assert_eq!(d.read(pid).get_u64(0), 7);
        d.reset_counters();
        assert_eq!(d.physical_reads(), 0);
        assert_eq!(d.physical_writes(), 0);
    }

    #[test]
    #[should_panic]
    fn reading_unallocated_page_panics() {
        let mut d = DiskSim::new();
        d.read(PageId(3));
    }
}
