//! The simulated disk: an append-allocated array of pages that counts every
//! physical access, seals every written page with a checksum, and can
//! replay deterministic media-fault schedules.
//!
//! Substitution note (see DESIGN.md): the paper ran on a real PC and
//! reported page I/Os; we count the same events on an in-memory "disk",
//! which preserves the metric while keeping experiments deterministic.
//!
//! # Checksums
//!
//! Every physical write seals the page: its FNV-1a checksum
//! ([`crate::page::Page::seal`]) is recorded in a catalog stored *beside*
//! the data array, not inside the sector it covers — the ZFS /
//! T10-DIF placement. That placement is what makes the two write-side
//! fault kinds detectable at all: a dropped or torn write leaves the
//! medium holding stale or mixed bytes while the catalog already carries
//! the seal of the *intended* content, so the next physical read reports
//! [`ReadOutcome::Mismatch`]. A checksum stored inside the sector would
//! validate the stale sector perfectly.
//!
//! # Faults
//!
//! [`FaultInjector`] arms the five media-fault kinds of the fault matrix
//! (transient read error, permanent bad sector, bit flips, torn write,
//! dropped write) at exact access counts — globally or per page — in the
//! style of the WAL's [`crate::wal::CrashInjector`]. Faults fire
//! deterministically and append to a trace, so a faulty run can be
//! replayed and asserted byte-for-byte. With nothing armed the injector
//! is two branch tests per access.
//!
//! # Latency
//!
//! [`LatencyInjector`] is the same arming discipline applied to *time*
//! instead of failure: armed points add ticks to a shared virtual
//! [`TickClock`] when the matching physical read fires, so a "slow
//! platter" is a seeded, replayable schedule rather than a `sleep`. The
//! serving layer's deadlines read the same clock, which is what makes
//! overload experiments deterministic (see `peb_serve`).

use std::collections::{HashMap, HashSet};

use peb_common::clock::TickClock;

use crate::page::{Page, PageId, ReadOutcome};

/// A typed physical-I/O failure, as surfaced by [`DiskSim::read`] and
/// propagated (after retry/repair) by the buffer pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoFault {
    /// The device failed this read transiently; a retry may succeed.
    Transient {
        /// The page whose read failed.
        pid: PageId,
    },
    /// The sector is permanently unreadable (marked bad by the fault
    /// schedule, or never allocated at all).
    BadSector {
        /// The unreadable page.
        pid: PageId,
    },
    /// The device returned bytes whose checksum does not match the seal
    /// taken at the last write — silent corruption, detected.
    Corrupt {
        /// The corrupt page.
        pid: PageId,
        /// The seal recorded when the page was last written.
        expected: u64,
        /// The checksum of the bytes the device actually returned.
        found: u64,
    },
}

impl IoFault {
    /// The page the fault occurred on.
    pub fn pid(&self) -> PageId {
        match self {
            IoFault::Transient { pid } | IoFault::BadSector { pid } => *pid,
            IoFault::Corrupt { pid, .. } => *pid,
        }
    }
}

impl std::fmt::Display for IoFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoFault::Transient { pid } => write!(f, "transient read error on page {}", pid.0),
            IoFault::BadSector { pid } => write!(f, "bad sector at page {}", pid.0),
            IoFault::Corrupt { pid, expected, found } => write!(
                f,
                "checksum mismatch on page {} (expected {expected:#018x}, found {found:#018x})",
                pid.0
            ),
        }
    }
}

impl std::error::Error for IoFault {}

/// The five media-fault kinds the injector can arm — the rows of the
/// fault matrix. Read-side kinds fire on [`DiskSim::read`], write-side
/// kinds on [`DiskSim::write`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Read-side: this one read attempt fails; the medium is intact and
    /// the next attempt (no other fault armed) succeeds.
    TransientRead,
    /// Read-side: the sector becomes permanently unreadable from this
    /// access on — rewrites do not heal it (a grown defect, not rot).
    BadSector,
    /// Read-side: `bits` stored bits flip in place before the read is
    /// served (1 = classic single-bit rot; >1 = a burst). The corruption
    /// persists on the medium until something rewrites the page.
    BitFlip {
        /// How many distinct bits to flip (clamped to at least 1).
        bits: u8,
    },
    /// Write-side: only the first half of the written bytes reaches the
    /// medium; the tail keeps the previous content (a torn write across
    /// a power cut). The seal catalog still records the intended
    /// content's checksum, so the tear is detectable on the next read.
    TornWrite,
    /// Write-side: the write is acknowledged but never reaches the
    /// medium (a lost write absorbed by a lying drive cache). Detectable
    /// like a torn write: the catalog seal no longer matches the stale
    /// sector.
    DroppedWrite,
}

/// One fired fault, for trace-asserting deterministic schedules.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEvent {
    /// What fired.
    pub kind: FaultKind,
    /// The page it fired on.
    pub pid: PageId,
    /// The global access ordinal it fired at (reads and writes counted
    /// separately; see [`FaultInjector::arm_read`] /
    /// [`FaultInjector::arm_write`]).
    pub access: u64,
    /// Whether the access was a write.
    pub write: bool,
}

/// Deterministic media-fault schedule for one [`DiskSim`].
///
/// Faults are armed at exact access ordinals, either globally (the n-th
/// physical read/write overall) or per page (the n-th physical read/write
/// *of that page*), counted from the creation of the disk. Each armed
/// point fires exactly once (bad sectors persist afterwards in the bad-
/// sector set); fired events append to a trace in firing order.
#[derive(Clone, Default)]
pub struct FaultInjector {
    /// Armed read-side points: `(scope, nth) -> kind`, where `scope` is
    /// `Some(pid)` for per-page ordinals and `None` for global ones.
    read_points: HashMap<(Option<u32>, u64), FaultKind>,
    /// Armed write-side points, same keying.
    write_points: HashMap<(Option<u32>, u64), FaultKind>,
    /// Permanently unreadable pages.
    bad: HashSet<u32>,
    /// Global read/write ordinals (next access gets the current value).
    reads_seen: u64,
    writes_seen: u64,
    /// Per-page ordinals, tracked only once something is armed.
    pid_reads: HashMap<u32, u64>,
    pid_writes: HashMap<u32, u64>,
    /// Seed for deriving deterministic bit/byte offsets of flips.
    seed: u64,
    /// Fired events, in firing order.
    trace: Vec<FaultEvent>,
}

/// splitmix64 — the deterministic offset/schedule derivation everywhere
/// in the fault layer (no external RNG crates).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultInjector {
    /// An empty (idle) injector.
    pub fn new() -> Self {
        FaultInjector { seed: 0xfa017_u64, ..Default::default() }
    }

    /// Set the seed that derives bit/byte offsets for [`FaultKind::BitFlip`]
    /// faults (and nothing else — arming is always explicit).
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// Arm a read-side fault at the `nth` physical read (0-based, counted
    /// from disk creation): of page `pid` when `Some`, of any page when
    /// `None`. Write-side kinds are rejected.
    pub fn arm_read(&mut self, pid: Option<PageId>, nth: u64, kind: FaultKind) {
        assert!(
            matches!(
                kind,
                FaultKind::TransientRead | FaultKind::BadSector | FaultKind::BitFlip { .. }
            ),
            "{kind:?} is a write-side fault; arm it with arm_write"
        );
        self.read_points.insert((pid.map(|p| p.0), nth), kind);
    }

    /// Arm a write-side fault at the `nth` physical write (0-based,
    /// counted from disk creation): of page `pid` when `Some`, of any
    /// page when `None`. Read-side kinds other than
    /// [`FaultKind::BitFlip`] (corruption during transfer) are rejected.
    pub fn arm_write(&mut self, pid: Option<PageId>, nth: u64, kind: FaultKind) {
        assert!(
            matches!(
                kind,
                FaultKind::TornWrite | FaultKind::DroppedWrite | FaultKind::BitFlip { .. }
            ),
            "{kind:?} is a read-side fault; arm it with arm_read"
        );
        self.write_points.insert((pid.map(|p| p.0), nth), kind);
    }

    /// Mark a sector permanently unreadable right now (the schedule-free
    /// form of [`FaultKind::BadSector`]).
    pub fn mark_bad_sector(&mut self, pid: PageId) {
        self.bad.insert(pid.0);
    }

    /// Whether `pid` is currently in the bad-sector set.
    pub fn is_bad_sector(&self, pid: PageId) -> bool {
        self.bad.contains(&pid.0)
    }

    /// Arm a seeded schedule of `points` read-side faults spread over the
    /// next `window` global read ordinals — the soak-test generator.
    /// Deterministic in `(seed, points, window)`; duplicate ordinals
    /// collapse (last arm wins), so up to `points` faults fire. The kind
    /// mix cycles transient / flip / transient / bad-sector, weighting
    /// the recoverable kinds.
    pub fn arm_seeded_read_schedule(&mut self, seed: u64, points: u64, window: u64) {
        self.seed = seed;
        let base = self.reads_seen;
        for i in 0..points {
            let h = splitmix64(seed ^ (i.wrapping_mul(0x9e37_79b9)));
            let nth = base + h % window.max(1);
            let kind = match i % 4 {
                0 | 2 => FaultKind::TransientRead,
                1 => FaultKind::BitFlip { bits: (h >> 32) as u8 % 3 + 1 },
                _ => FaultKind::BadSector,
            };
            self.read_points.insert((None, nth), kind);
        }
    }

    /// The fired-fault trace, in firing order.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// Total faults fired so far.
    pub fn injected(&self) -> u64 {
        self.trace.len() as u64
    }

    /// Disarm everything: armed points, the bad-sector set, and the
    /// trace. Access ordinals keep counting (they are the disk's clock).
    pub fn clear(&mut self) {
        self.read_points.clear();
        self.write_points.clear();
        self.bad.clear();
        self.trace.clear();
    }

    /// Look up and consume the armed point for this read, advancing the
    /// ordinals (ordinals tick on *every* access, armed or not, so "the
    /// nth read" always means "since disk creation"). Returns the fault
    /// to apply, if any.
    fn on_read(&mut self, pid: PageId) -> Option<FaultKind> {
        let n = self.reads_seen;
        self.reads_seen += 1;
        let pn = {
            let c = self.pid_reads.entry(pid.0).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        if self.read_points.is_empty() {
            return None;
        }
        let kind = self
            .read_points
            .remove(&(Some(pid.0), pn))
            .or_else(|| self.read_points.remove(&(None, n)))?;
        if let FaultKind::BadSector = kind {
            self.bad.insert(pid.0);
        }
        self.trace.push(FaultEvent { kind, pid, access: n, write: false });
        Some(kind)
    }

    /// Look up and consume the armed point for this write (same ordinal
    /// contract as [`FaultInjector::on_read`]). Returns the fault to
    /// apply, if any.
    fn on_write(&mut self, pid: PageId) -> Option<FaultKind> {
        let n = self.writes_seen;
        self.writes_seen += 1;
        let pn = {
            let c = self.pid_writes.entry(pid.0).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        if self.write_points.is_empty() {
            return None;
        }
        let kind = self
            .write_points
            .remove(&(Some(pid.0), pn))
            .or_else(|| self.write_points.remove(&(None, n)))?;
        self.trace.push(FaultEvent { kind, pid, access: n, write: true });
        Some(kind)
    }

    /// Deterministic distinct byte/bit offsets for a flip burst.
    fn flip_offsets(&self, pid: PageId, access: u64, bits: u8) -> Vec<(usize, u8)> {
        let bits = bits.max(1) as usize;
        let mut out = Vec::with_capacity(bits);
        let mut x = self.seed ^ (u64::from(pid.0) << 32) ^ access;
        while out.len() < bits {
            x = splitmix64(x);
            let byte = (x as usize) % crate::page::PAGE_SIZE;
            let mask = 1u8 << ((x >> 13) % 8);
            if !out.contains(&(byte, mask)) {
                out.push((byte, mask));
            }
        }
        out
    }
}

/// One fired latency point, for trace-asserting deterministic slow-read
/// schedules (the latency twin of [`FaultEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LatencyEvent {
    /// The page whose read was slowed.
    pub pid: PageId,
    /// The global read ordinal it fired at.
    pub access: u64,
    /// How many virtual ticks the point added to the clock.
    pub ticks: u64,
}

/// Deterministic slow-read schedule for one [`DiskSim`] — the latency
/// counterpart of [`FaultInjector`], with the same arm/ordinal/trace
/// discipline. Armed points add virtual ticks to the disk's
/// [`TickClock`] when the matching physical read happens; nothing
/// sleeps, so "slow media" is reproducible on any machine and a loaded
/// CI runner cannot change the measured overload behavior.
///
/// Unlike fault points, latency points can be armed at the same ordinal
/// repeatedly across [`LatencyInjector::clear`] cycles; within one
/// schedule each armed point fires exactly once.
#[derive(Clone, Default)]
pub struct LatencyInjector {
    /// Armed points: `(scope, nth) -> ticks`, where `scope` is
    /// `Some(pid)` for per-page read ordinals and `None` for global ones
    /// (same keying as [`FaultInjector`]).
    points: HashMap<(Option<u32>, u64), u64>,
    /// Global read ordinal (next read gets the current value).
    reads_seen: u64,
    /// Per-page read ordinals, tracked only once something is armed.
    pid_reads: HashMap<u32, u64>,
    /// Fired events, in firing order.
    trace: Vec<LatencyEvent>,
    /// Total ticks injected so far.
    injected_ticks: u64,
}

impl LatencyInjector {
    /// An empty (idle) injector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm `ticks` of extra latency at the `nth` physical read (0-based,
    /// counted from disk creation): of page `pid` when `Some`, of any
    /// page when `None`. Zero-tick points are ignored.
    pub fn arm_slow_read(&mut self, pid: Option<PageId>, nth: u64, ticks: u64) {
        if ticks > 0 {
            self.points.insert((pid.map(|p| p.0), nth), ticks);
        }
    }

    /// Arm a seeded burst of `points` slow reads spread over the next
    /// `window` global read ordinals, each adding between 1 and
    /// `max_ticks` ticks — the chaos-harness generator. Deterministic in
    /// `(seed, points, window, max_ticks)`; duplicate ordinals collapse
    /// (last arm wins), so up to `points` spikes fire.
    pub fn arm_seeded_read_burst(&mut self, seed: u64, points: u64, window: u64, max_ticks: u64) {
        let base = self.reads_seen;
        for i in 0..points {
            let h = splitmix64(seed ^ (i.wrapping_mul(0x517c_c1b7)));
            let nth = base + h % window.max(1);
            let ticks = 1 + (h >> 32) % max_ticks.max(1);
            self.points.insert((None, nth), ticks);
        }
    }

    /// The fired-latency trace, in firing order.
    pub fn trace(&self) -> &[LatencyEvent] {
        &self.trace
    }

    /// Total ticks injected so far.
    pub fn injected_ticks(&self) -> u64 {
        self.injected_ticks
    }

    /// Disarm everything and clear the trace. Read ordinals keep
    /// counting (they are the disk's clock), and the injected-tick total
    /// is preserved — it mirrors ticks already on the [`TickClock`].
    pub fn clear(&mut self) {
        self.points.clear();
        self.trace.clear();
    }

    /// Look up and consume the armed point for this read, advancing the
    /// ordinals (same contract as [`FaultInjector::on_read`]). Returns
    /// the ticks to add to the clock.
    fn on_read(&mut self, pid: PageId) -> u64 {
        let n = self.reads_seen;
        self.reads_seen += 1;
        let pn = {
            let c = self.pid_reads.entry(pid.0).or_insert(0);
            let v = *c;
            *c += 1;
            v
        };
        if self.points.is_empty() {
            return 0;
        }
        let Some(ticks) =
            self.points.remove(&(Some(pid.0), pn)).or_else(|| self.points.remove(&(None, n)))
        else {
            return 0;
        };
        self.trace.push(LatencyEvent { pid, access: n, ticks });
        self.injected_ticks += ticks;
        ticks
    }
}

/// Physical page store with access counters, a seal catalog, and a fault
/// injector.
///
/// `Clone` copies the entire page array, the seals, the counters, and the
/// fault state — the crash-point harness uses it to harvest the durable
/// state of a "crashed" pool.
#[derive(Clone)]
pub struct DiskSim {
    pages: Vec<Page>,
    /// Seal (checksum) of each page as of its last write, stored apart
    /// from the data (see the module docs on placement).
    seals: Vec<u64>,
    reads: u64,
    writes: u64,
    faults: FaultInjector,
    latency: LatencyInjector,
    /// Virtual clock the latency injector advances. The buffer pool
    /// replaces the default with its own shared clock so query deadlines
    /// observe injected device latency.
    clock: TickClock,
}

impl Default for DiskSim {
    fn default() -> Self {
        Self::new()
    }
}

impl DiskSim {
    /// An empty disk with zeroed access counters and an idle injector.
    pub fn new() -> Self {
        DiskSim {
            pages: Vec::new(),
            seals: Vec::new(),
            reads: 0,
            writes: 0,
            faults: FaultInjector::new(),
            latency: LatencyInjector::new(),
            clock: TickClock::new(),
        }
    }

    /// Replace the clock injected latency advances (the buffer pool
    /// shares its own clock this way). Ticks already injected stay on
    /// the old clock.
    pub fn set_clock(&mut self, clock: TickClock) {
        self.clock = clock;
    }

    /// The virtual clock this disk's latency schedule advances.
    pub fn clock(&self) -> &TickClock {
        &self.clock
    }

    /// Allocate a fresh zeroed page and return its id.
    pub fn allocate(&mut self) -> PageId {
        let pid = PageId(self.pages.len() as u32);
        let page = Page::new();
        self.seals.push(page.seal());
        self.pages.push(page);
        pid
    }

    /// Physically read a page (counted), applying any armed fault and
    /// verifying the stored bytes against the seal catalog. This is the
    /// outcome-typed form [`DiskSim::read`] adapts into a `Result`.
    pub fn read_outcome(&mut self, pid: PageId) -> ReadOutcome {
        self.reads += 1;
        let slow = self.latency.on_read(pid);
        if slow > 0 {
            self.clock.advance(slow);
        }
        let idx = pid.0 as usize;
        if !pid.is_valid() || idx >= self.pages.len() {
            // Unallocated ids are addressable but were never written:
            // nothing to serve, typed as a bad sector (not a panic).
            return ReadOutcome::BadSector;
        }
        match self.faults.on_read(pid) {
            Some(FaultKind::TransientRead) => return ReadOutcome::Transient,
            Some(FaultKind::BadSector) => return ReadOutcome::BadSector,
            Some(FaultKind::BitFlip { bits }) => {
                // Corrupt the *medium*: the flip persists for later reads
                // until something rewrites the page.
                let access = self.faults.reads_seen.wrapping_sub(1);
                for (byte, mask) in self.faults.flip_offsets(pid, access, bits) {
                    self.pages[idx].bytes_mut(byte, 1)[0] ^= mask;
                }
            }
            Some(FaultKind::TornWrite | FaultKind::DroppedWrite) | None => {}
        }
        if self.faults.is_bad_sector(pid) {
            return ReadOutcome::BadSector;
        }
        let page = self.pages[idx].clone();
        let expected = self.seals[idx];
        let found = page.seal();
        if found != expected {
            ReadOutcome::Mismatch { expected, found }
        } else {
            ReadOutcome::Clean(page)
        }
    }

    /// Physically read a page (counted). Every failure is typed — an
    /// unallocated id reads as [`IoFault::BadSector`], never a panic.
    pub fn read(&mut self, pid: PageId) -> Result<Page, IoFault> {
        match self.read_outcome(pid) {
            ReadOutcome::Clean(page) => Ok(page),
            ReadOutcome::Transient => Err(IoFault::Transient { pid }),
            ReadOutcome::BadSector => Err(IoFault::BadSector { pid }),
            ReadOutcome::Mismatch { expected, found } => {
                Err(IoFault::Corrupt { pid, expected, found })
            }
        }
    }

    /// Physically write a page (counted). The seal catalog records the
    /// checksum of the *intended* content unconditionally; an armed
    /// write-side fault then decides what actually reaches the medium
    /// (all of it, half of it, or none of it). Writing an unallocated id
    /// is a caller bug — the pool only writes pages it allocated — and
    /// still panics by contract.
    pub fn write(&mut self, pid: PageId, page: &Page) {
        self.writes += 1;
        let idx = pid.0 as usize;
        self.seals[idx] = page.seal();
        match self.faults.on_write(pid) {
            Some(FaultKind::TornWrite) => {
                // Half-new/half-old: the first half lands, the tail keeps
                // the previous sector content.
                let half = crate::page::PAGE_SIZE / 2;
                self.pages[idx].bytes_mut(0, half).copy_from_slice(page.bytes(0, half));
            }
            Some(FaultKind::DroppedWrite) => {}
            Some(FaultKind::BitFlip { bits }) => {
                // Corruption during transfer: the write lands with bits
                // flipped relative to what was acknowledged (and sealed).
                let mut stored = page.clone();
                let access = self.faults.writes_seen.wrapping_sub(1);
                for (byte, mask) in self.faults.flip_offsets(pid, access, bits) {
                    stored.bytes_mut(byte, 1)[0] ^= mask;
                }
                self.pages[idx] = stored;
            }
            Some(FaultKind::TransientRead | FaultKind::BadSector) | None => {
                self.pages[idx] = page.clone();
            }
        }
    }

    /// Number of pages allocated so far.
    pub fn num_pages(&self) -> usize {
        self.pages.len()
    }

    /// Borrow a page image without counting an access (and without fault
    /// injection — this is the harness's view of the platter, not a
    /// device command). Recovery uses it to scan the log region and to
    /// compare disks byte-for-byte; it is **not** part of the measured
    /// I/O path. An unallocated id is a typed error, never a panic.
    pub fn peek(&self, pid: PageId) -> Result<&Page, IoFault> {
        let idx = pid.0 as usize;
        if !pid.is_valid() || idx >= self.pages.len() {
            return Err(IoFault::BadSector { pid });
        }
        Ok(&self.pages[idx])
    }

    /// The cataloged seal of `pid` (the checksum of its last write), or a
    /// typed error for an unallocated id.
    pub fn seal_of(&self, pid: PageId) -> Result<u64, IoFault> {
        let idx = pid.0 as usize;
        if !pid.is_valid() || idx >= self.seals.len() {
            return Err(IoFault::BadSector { pid });
        }
        Ok(self.seals[idx])
    }

    /// The fault injector, for arming schedules and reading the trace.
    pub fn faults_mut(&mut self) -> &mut FaultInjector {
        &mut self.faults
    }

    /// Read-only view of the fault injector (trace, bad-sector set).
    pub fn faults(&self) -> &FaultInjector {
        &self.faults
    }

    /// The latency injector, for arming slow-read schedules and reading
    /// the trace.
    pub fn latency_mut(&mut self) -> &mut LatencyInjector {
        &mut self.latency
    }

    /// Read-only view of the latency injector (trace, injected ticks).
    pub fn latency(&self) -> &LatencyInjector {
        &self.latency
    }

    /// Physical page reads since the last counter reset.
    pub fn physical_reads(&self) -> u64 {
        self.reads
    }

    /// Physical page writes since the last counter reset.
    pub fn physical_writes(&self) -> u64 {
        self.writes
    }

    /// Zero both access counters.
    pub fn reset_counters(&mut self) {
        self.reads = 0;
        self.writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_is_sequential() {
        let mut d = DiskSim::new();
        assert_eq!(d.allocate(), PageId(0));
        assert_eq!(d.allocate(), PageId(1));
        assert_eq!(d.num_pages(), 2);
    }

    #[test]
    fn reads_and_writes_are_counted() {
        let mut d = DiskSim::new();
        let pid = d.allocate();
        let mut p = d.read(pid).unwrap();
        p.put_u64(0, 7);
        d.write(pid, &p);
        assert_eq!(d.physical_reads(), 1);
        assert_eq!(d.physical_writes(), 1);
        assert_eq!(d.read(pid).unwrap().get_u64(0), 7);
        d.reset_counters();
        assert_eq!(d.physical_reads(), 0);
        assert_eq!(d.physical_writes(), 0);
    }

    #[test]
    fn reading_unallocated_page_is_a_typed_error() {
        // The pre-fault-layer behavior was an index panic; an unreadable
        // address is device business, so it is a typed bad sector now.
        let mut d = DiskSim::new();
        assert_eq!(d.read(PageId(3)), Err(IoFault::BadSector { pid: PageId(3) }));
        assert!(d.peek(PageId(3)).is_err());
        assert_eq!(
            d.read(PageId::INVALID),
            Err(IoFault::BadSector { pid: PageId::INVALID }),
            "the sentinel id is never readable"
        );
        // The failed attempts still counted as device accesses.
        assert_eq!(d.physical_reads(), 2);
    }

    #[test]
    fn transient_fault_fails_once_then_recovers() {
        let mut d = DiskSim::new();
        let pid = d.allocate();
        let mut p = Page::new();
        p.put_u64(0, 9);
        d.write(pid, &p);
        d.faults_mut().arm_read(Some(pid), 1, FaultKind::TransientRead);
        assert_eq!(d.read(pid).unwrap().get_u64(0), 9, "read 0 is clean");
        assert_eq!(d.read(pid), Err(IoFault::Transient { pid }), "read 1 faults");
        assert_eq!(d.read(pid).unwrap().get_u64(0), 9, "read 2 recovers");
        assert_eq!(d.faults().injected(), 1);
    }

    #[test]
    fn bad_sector_is_permanent() {
        let mut d = DiskSim::new();
        let pid = d.allocate();
        d.faults_mut().arm_read(Some(pid), 0, FaultKind::BadSector);
        assert_eq!(d.read(pid), Err(IoFault::BadSector { pid }));
        // Rewriting does not heal a grown defect.
        d.write(pid, &Page::new());
        assert_eq!(d.read(pid), Err(IoFault::BadSector { pid }));
    }

    #[test]
    fn bit_flip_is_detected_by_the_seal() {
        let mut d = DiskSim::new();
        let pid = d.allocate();
        let mut p = Page::new();
        p.put_u64(128, 0xfeed);
        d.write(pid, &p);
        d.faults_mut().arm_read(Some(pid), 0, FaultKind::BitFlip { bits: 1 });
        match d.read(pid) {
            Err(IoFault::Corrupt { pid: got, expected, found }) => {
                assert_eq!(got, pid);
                assert_ne!(expected, found);
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The rot persists until rewritten...
        assert!(matches!(d.read(pid), Err(IoFault::Corrupt { .. })));
        // ...and a rewrite heals it.
        d.write(pid, &p);
        assert_eq!(d.read(pid).unwrap().get_u64(128), 0xfeed);
    }

    #[test]
    fn torn_and_dropped_writes_are_detected_on_read() {
        let mut d = DiskSim::new();
        let a = d.allocate();
        let b = d.allocate();
        let mut old = Page::new();
        old.put_u64(0, 1);
        old.put_u64(4088, 1);
        d.write(a, &old);
        d.write(b, &old);

        let mut new = Page::new();
        new.put_u64(0, 2);
        new.put_u64(4088, 2);
        d.faults_mut().arm_write(Some(a), 1, FaultKind::TornWrite);
        d.faults_mut().arm_write(Some(b), 1, FaultKind::DroppedWrite);
        d.write(a, &new); // half lands
        d.write(b, &new); // nothing lands
        assert!(matches!(d.read(a), Err(IoFault::Corrupt { .. })), "torn write detected");
        assert!(matches!(d.read(b), Err(IoFault::Corrupt { .. })), "dropped write detected");
        // The stale halves really are what the medium holds.
        assert_eq!(d.peek(a).unwrap().get_u64(0), 2, "head of the torn write landed");
        assert_eq!(d.peek(a).unwrap().get_u64(4088), 1, "tail kept the old content");
        assert_eq!(d.peek(b).unwrap().get_u64(0), 1, "dropped write left the page alone");
    }

    #[test]
    fn global_and_per_pid_ordinals_both_fire() {
        let mut d = DiskSim::new();
        let a = d.allocate();
        let b = d.allocate();
        d.faults_mut().arm_read(None, 2, FaultKind::TransientRead); // 3rd read overall
        d.faults_mut().arm_read(Some(b), 0, FaultKind::TransientRead); // 1st read of b
        assert!(d.read(a).is_ok()); // global #0
        assert!(d.read(b).is_err()); // global #1, b's #0 -> per-pid point
        assert!(d.read(a).is_err()); // global #2 -> global point
        assert!(d.read(a).is_ok());
        assert!(d.read(b).is_ok());
        let trace = d.faults().trace().to_vec();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].pid, b);
        assert_eq!(trace[1].pid, a);
    }

    #[test]
    fn latency_points_advance_the_clock_and_trace() {
        let mut d = DiskSim::new();
        let a = d.allocate();
        let b = d.allocate();
        d.latency_mut().arm_slow_read(Some(a), 1, 5); // a's 2nd read
        d.latency_mut().arm_slow_read(None, 2, 3); // 3rd read overall
        let clock = d.clock().clone();
        assert_eq!(clock.now(), 0);
        assert!(d.read(a).is_ok()); // global #0, a's #0: clean
        assert_eq!(clock.now(), 0);
        assert!(d.read(a).is_ok()); // a's #1 -> +5
        assert_eq!(clock.now(), 5);
        assert!(d.read(b).is_ok()); // global #2 -> +3
        assert_eq!(clock.now(), 8);
        assert!(d.read(b).is_ok()); // nothing armed
        assert_eq!(clock.now(), 8);
        let trace = d.latency().trace();
        assert_eq!(trace.len(), 2);
        assert_eq!((trace[0].pid, trace[0].ticks), (a, 5));
        assert_eq!((trace[1].pid, trace[1].ticks), (b, 3));
        assert_eq!(d.latency().injected_ticks(), 8);
    }

    #[test]
    fn latency_and_faults_compose_on_one_read() {
        // A read can be both slow and failing: the ticks land before the
        // outcome is decided, so a deadline sees the stall either way.
        let mut d = DiskSim::new();
        let pid = d.allocate();
        d.faults_mut().arm_read(Some(pid), 0, FaultKind::TransientRead);
        d.latency_mut().arm_slow_read(Some(pid), 0, 7);
        let clock = d.clock().clone();
        assert_eq!(d.read(pid), Err(IoFault::Transient { pid }));
        assert_eq!(clock.now(), 7, "the stall precedes the typed failure");
    }

    #[test]
    fn seeded_latency_burst_is_deterministic() {
        let run = || {
            let mut d = DiskSim::new();
            let pids: Vec<PageId> = (0..4).map(|_| d.allocate()).collect();
            d.latency_mut().arm_seeded_read_burst(99, 6, 16, 10);
            for r in 0..16u64 {
                let _ = d.read(pids[(r % 4) as usize]);
            }
            (d.clock().now(), d.latency().trace().to_vec())
        };
        let (t1, e1) = run();
        let (t2, e2) = run();
        assert_eq!(t1, t2, "injected ticks must be reproducible");
        assert_eq!(e1, e2, "latency trace must be reproducible");
        assert!(!e1.is_empty(), "the seeded burst must actually fire");
        assert!(e1.iter().all(|e| e.ticks >= 1 && e.ticks <= 10));
    }

    #[test]
    fn fault_trace_is_deterministic() {
        let run = || {
            let mut d = DiskSim::new();
            let pids: Vec<PageId> = (0..4).map(|_| d.allocate()).collect();
            let mut p = Page::new();
            for (i, pid) in pids.iter().enumerate() {
                p.put_u64(0, i as u64);
                d.write(*pid, &p);
            }
            d.faults_mut().arm_seeded_read_schedule(42, 6, 16);
            let mut outcomes = Vec::new();
            for r in 0..16u64 {
                let pid = pids[(r % 4) as usize];
                outcomes.push(d.read(pid).map(|p| p.get_u64(0)));
            }
            (outcomes, d.faults().trace().to_vec())
        };
        let (o1, t1) = run();
        let (o2, t2) = run();
        assert_eq!(o1, o2, "outcome sequence must be reproducible");
        assert_eq!(t1, t2, "fault trace must be reproducible");
        assert!(!t1.is_empty(), "the seeded schedule must actually fire");
    }
}
