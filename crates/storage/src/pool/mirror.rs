//! Lock-free versioned page mirror: the optimistic-read half of a pool
//! shard.
//!
//! Each shard keeps, **beside** its mutex-protected frame table, a
//! direct-mapped array of [`MirrorSlot`]s readable without any lock. A
//! slot publishes one resident page as a seqlock:
//!
//! * `version` — even means the slot content is stable, odd means a
//!   writer (always under the shard mutex) is mid-update;
//! * `pid` — which page the slot currently publishes (`INVALID` = empty);
//! * `words` — the page image as relaxed-atomic machine words.
//!
//! Writers are serialized by the shard mutex, so the only race is
//! writer-vs-reader, which the version protocol resolves: a reader loads
//! the version (acquire), checks it is even and the pid matches, copies
//! every word into a private scratch page, then re-loads the version. If
//! it moved, the copy may be torn and is discarded; if it did not, the
//! copy is a consistent snapshot of the page at that version. All data
//! words are atomics, so the racing access is defined behavior — no
//! `unsafe` anywhere.
//!
//! The mirror is a *cache*, not the truth: the frame table (under the
//! mutex) stays authoritative, and every mirror update happens while the
//! shard mutex is held. Direct mapping means two resident pages can
//! collide on one slot; the loser simply isn't published and optimistic
//! reads of it fall back to the locked path — correctness never depends
//! on a page being mirrored. An entry is published on load, steal, or
//! write; it is invalidated (version bumped through odd back to even,
//! pid cleared) on eviction and on [`Mirror::reset`].
//!
//! `last_used` carries LRU recency for optimistic touches: the locked
//! path cannot see them (they take no lock), so eviction reads the slot's
//! recency (see `BufferPool::evict_one`) and a steal folds the displaced
//! page's recency back into its frame. That bookkeeping is what keeps the
//! single-shard pool's eviction decisions — and therefore the frozen I/O
//! ledger — byte-identical to the seed pool even with optimistic reads on.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::page::{Page, PageId, PAGE_WORDS};

/// One seqlock-published page image. See the [module docs](self).
pub(super) struct MirrorSlot {
    /// Seqlock version: even = stable, odd = write in progress. Bumped to
    /// odd before and back to even after every content change.
    version: AtomicU64,
    /// The page this slot currently publishes (`PageId::INVALID` = none).
    pid: AtomicU32,
    /// Shard-clock value of the page's most recent *optimistic* touch.
    last_used: AtomicU64,
    /// LSN of the newest log record covering the published page (0 when
    /// the page was never written under durability). Piggybacks page-LSN
    /// tracking on the mirror so [`super::BufferPool::page_lsn`] can
    /// answer without any lock.
    lsn: AtomicU64,
    /// The page image, word by word.
    words: Box<[AtomicU64]>,
}

impl MirrorSlot {
    fn new() -> Self {
        MirrorSlot {
            version: AtomicU64::new(0),
            pid: AtomicU32::new(PageId::INVALID.0),
            last_used: AtomicU64::new(0),
            lsn: AtomicU64::new(0),
            words: (0..PAGE_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Outcome of one lock-free read attempt against the mirror.
pub(super) enum TryRead {
    /// The scratch page now holds a consistent snapshot published at this
    /// (even) version.
    Hit(u64),
    /// The page is not published (empty slot or a colliding page owns it).
    Unpublished,
    /// A concurrent writer moved the version while we copied; the copy was
    /// discarded.
    Conflict,
}

/// A shard's direct-mapped array of versioned page images.
pub(super) struct Mirror {
    slots: Box<[MirrorSlot]>,
    /// Shift dividing out the pool's shard bits: pages of one shard have
    /// pids that are congruent mod the shard count, so slot selection uses
    /// `(pid >> shard_bits) % slots`.
    shard_bits: u32,
}

impl Mirror {
    /// A mirror with one slot per frame of the owning shard.
    pub(super) fn new(slots: usize, shard_bits: u32) -> Self {
        Mirror { slots: (0..slots.max(1)).map(|_| MirrorSlot::new()).collect(), shard_bits }
    }

    fn slot_of(&self, pid: PageId) -> &MirrorSlot {
        &self.slots[(pid.0 as usize >> self.shard_bits) % self.slots.len()]
    }

    /// Whether `pid` is currently published (racy answer; exact under the
    /// shard mutex since all publishers hold it).
    pub(super) fn holds(&self, pid: PageId) -> bool {
        self.slot_of(pid).pid.load(Ordering::Relaxed) == pid.0
    }

    /// The stable version `pid` is currently published at, or `None` if it
    /// is unpublished or mid-update. Lock-free.
    pub(super) fn version_of(&self, pid: PageId) -> Option<u64> {
        let slot = self.slot_of(pid);
        let v = slot.version.load(Ordering::Acquire);
        (v & 1 == 0 && slot.pid.load(Ordering::Relaxed) == pid.0).then_some(v)
    }

    /// The slot's optimistic-touch recency, if the slot publishes `pid`.
    /// Called under the shard mutex by eviction's victim selection.
    pub(super) fn recency_of(&self, pid: PageId) -> Option<u64> {
        let slot = self.slot_of(pid);
        (slot.pid.load(Ordering::Relaxed) == pid.0).then(|| slot.last_used.load(Ordering::Relaxed))
    }

    /// Record an optimistic touch of `pid` at shard-clock value `tick`.
    /// Racy by design (no lock); `fetch_max` keeps recency monotonic.
    pub(super) fn touch(&self, pid: PageId, tick: u64) {
        self.slot_of(pid).last_used.fetch_max(tick, Ordering::Relaxed);
    }

    /// Record the page LSN of `pid`'s newest log record. Called under the
    /// shard mutex right after the durable write path republished the
    /// page, so the LSN always describes the published image.
    pub(super) fn set_lsn(&self, pid: PageId, lsn: u64) {
        let slot = self.slot_of(pid);
        if slot.pid.load(Ordering::Relaxed) == pid.0 {
            slot.lsn.store(lsn, Ordering::Relaxed);
        }
    }

    /// The page LSN published for `pid`, if its slot holds it. Lock-free.
    pub(super) fn lsn_of(&self, pid: PageId) -> Option<u64> {
        let slot = self.slot_of(pid);
        (slot.pid.load(Ordering::Relaxed) == pid.0).then(|| slot.lsn.load(Ordering::Relaxed))
    }

    /// Publish `pid`'s current image, bumping the slot version through odd.
    /// Must be called with the shard mutex held (writers never race).
    ///
    /// Returns the displaced page and its optimistic recency when the slot
    /// previously published a *different* page — the caller folds that
    /// recency back into the displaced page's frame so no LRU information
    /// is lost when a slot is stolen.
    pub(super) fn publish(&self, pid: PageId, page: &Page) -> Option<(PageId, u64)> {
        let slot = self.slot_of(pid);
        let old_pid = PageId(slot.pid.load(Ordering::Relaxed));
        let displaced = (old_pid != pid && old_pid.is_valid())
            .then(|| (old_pid, slot.last_used.load(Ordering::Relaxed)));
        let v = slot.version.load(Ordering::Relaxed);
        // Mark odd (readers back off), then a release fence: the odd
        // marker is ordered before the content stores below, so a reader
        // that observes any new word and then re-checks the version
        // (through its acquire fence) sees ≥ v + 1 and discards the copy.
        slot.version.store(v + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.pid.store(pid.0, Ordering::Relaxed);
        if displaced.is_some() {
            // Fresh occupant: recency and page LSN restart from its frame.
            slot.last_used.store(0, Ordering::Relaxed);
            slot.lsn.store(0, Ordering::Relaxed);
        }
        page.store_atomic_words(&slot.words);
        slot.version.store(v + 2, Ordering::Release); // even: stable again
        displaced
    }

    /// Unpublish `pid` if its slot currently publishes it (eviction path).
    /// Must be called with the shard mutex held.
    pub(super) fn invalidate(&self, pid: PageId) {
        let slot = self.slot_of(pid);
        if slot.pid.load(Ordering::Relaxed) != pid.0 {
            return;
        }
        let v = slot.version.load(Ordering::Relaxed);
        slot.version.store(v + 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.pid.store(PageId::INVALID.0, Ordering::Relaxed);
        slot.last_used.store(0, Ordering::Relaxed);
        slot.lsn.store(0, Ordering::Relaxed);
        slot.version.store(v + 2, Ordering::Release);
    }

    /// Unpublish every slot and force every version even (defensive: a
    /// version that somehow stayed odd would permanently poison its slot
    /// for optimistic readers). Used by `clear` and `reset_stats`; must be
    /// called with the shard mutex held and readers quiesced-or-retrying.
    pub(super) fn reset(&self) {
        for slot in self.slots.iter() {
            let v = slot.version.load(Ordering::Relaxed);
            slot.pid.store(PageId::INVALID.0, Ordering::Relaxed);
            slot.last_used.store(0, Ordering::Relaxed);
            slot.lsn.store(0, Ordering::Relaxed);
            // Advance to the next even value strictly above v: readers
            // holding a pre-reset version always fail revalidation.
            slot.version.store((v | 1) + 1, Ordering::Release);
        }
    }

    /// Force any slot stuck at an odd version back to a stable state
    /// (unpublished, even version), leaving healthy slots untouched.
    /// Defensive companion of [`Mirror::reset`] used by `reset_stats`:
    /// publishers complete their version bumps under the shard mutex, so
    /// an odd version here indicates a bug — but left alone it would
    /// silently poison the slot for optimistic readers forever.
    pub(super) fn repair(&self) {
        for slot in self.slots.iter() {
            let v = slot.version.load(Ordering::Relaxed);
            if v & 1 == 1 {
                slot.pid.store(PageId::INVALID.0, Ordering::Relaxed);
                slot.last_used.store(0, Ordering::Relaxed);
                slot.version.store(v + 1, Ordering::Release);
            }
        }
    }

    /// Attempt a lock-free snapshot of `pid` into `scratch`. See
    /// [`TryRead`] for the outcomes; on [`TryRead::Hit`] the scratch page
    /// is a consistent image published at the returned version.
    pub(super) fn try_read(&self, pid: PageId, scratch: &mut Page) -> TryRead {
        let slot = self.slot_of(pid);
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return TryRead::Conflict;
        }
        if slot.pid.load(Ordering::Relaxed) != pid.0 {
            return TryRead::Unpublished;
        }
        scratch.load_atomic_words(&slot.words);
        // Acquire fence: the word loads above cannot drift after this
        // re-load of the version.
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) != v1 {
            return TryRead::Conflict;
        }
        // The pid could only change together with the version, so the
        // snapshot is both untorn and the right page.
        TryRead::Hit(v1)
    }
}
