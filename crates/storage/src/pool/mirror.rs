//! Lock-free versioned page mirror: the optimistic-read half of a pool
//! shard.
//!
//! Each shard keeps, **beside** its mutex-protected frame table, a
//! direct-mapped array of [`MirrorSlot`]s readable without any lock. A
//! slot publishes one resident page as a seqlock:
//!
//! * `version` — even means the slot content is stable, odd means a
//!   writer (always under the shard mutex) is mid-update;
//! * `pid` — which page the slot currently publishes (`INVALID` = empty);
//! * `words` — the page image as relaxed-atomic machine words.
//!
//! Writers are serialized by the shard mutex, so the only race is
//! writer-vs-reader, which the version protocol resolves: a reader loads
//! the version (acquire), checks it is even and the pid matches, copies
//! every word into a private scratch page, then re-loads the version. If
//! it moved, the copy may be torn and is discarded; if it did not, the
//! copy is a consistent snapshot of the page at that version. All data
//! words are atomics, so the racing access is defined behavior — no
//! `unsafe` anywhere.
//!
//! The mirror is a *cache*, not the truth: the frame table (under the
//! mutex) stays authoritative, and every mirror update happens while the
//! shard mutex is held. Slots are grouped into **2-way sets**: a page
//! hashes to a set and may occupy either of its two slots, so two pages
//! whose indexes collide — B+-tree roots and upper inner pages pinned at
//! nearby pids are the classic case — can both stay published instead of
//! endlessly stealing one slot from each other. A publish prefers the
//! slot already holding the page, then an empty slot, then steals the
//! set's least-recently-touched way. A page that loses both ways simply
//! isn't published and optimistic reads of it fall back to the locked
//! path — correctness never depends on a page being mirrored. An entry is
//! published on load, steal, or write; it is invalidated (version bumped
//! through odd back to even, pid cleared) on eviction and on
//! [`Mirror::reset`].
//!
//! `last_used` carries LRU recency for optimistic touches: the locked
//! path cannot see them (they take no lock), so eviction reads the slot's
//! recency (see `BufferPool::evict_one`) and a steal folds the displaced
//! page's recency back into its frame. That bookkeeping is what keeps the
//! single-shard pool's eviction decisions — and therefore the frozen I/O
//! ledger — byte-identical to the seed pool even with optimistic reads on.

use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use crate::page::{Page, PageId, PAGE_WORDS};

/// One seqlock-published page image. See the [module docs](self).
pub(super) struct MirrorSlot {
    /// Seqlock version: even = stable, odd = write in progress. Bumped to
    /// odd before and back to even after every content change.
    version: AtomicU64,
    /// The page this slot currently publishes (`PageId::INVALID` = none).
    pid: AtomicU32,
    /// Shard-clock value of the page's most recent *optimistic* touch.
    last_used: AtomicU64,
    /// LSN of the newest log record covering the published page (0 when
    /// the page was never written under durability). Piggybacks page-LSN
    /// tracking on the mirror so [`super::BufferPool::page_lsn`] can
    /// answer without any lock.
    lsn: AtomicU64,
    /// The page image, word by word.
    words: Box<[AtomicU64]>,
}

impl MirrorSlot {
    fn new() -> Self {
        MirrorSlot {
            version: AtomicU64::new(0),
            pid: AtomicU32::new(PageId::INVALID.0),
            last_used: AtomicU64::new(0),
            lsn: AtomicU64::new(0),
            words: (0..PAGE_WORDS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// Outcome of one lock-free read attempt against the mirror.
pub(super) enum TryRead {
    /// The scratch page now holds a consistent snapshot published at this
    /// (even) version.
    Hit(u64),
    /// The page is not published (empty slot or a colliding page owns it).
    Unpublished,
    /// A concurrent writer moved the version while we copied; the copy was
    /// discarded.
    Conflict,
}

/// A shard's 2-way set-associative array of versioned page images.
pub(super) struct Mirror {
    slots: Box<[MirrorSlot]>,
    /// Shift dividing out the pool's shard bits: pages of one shard have
    /// pids that are congruent mod the shard count, so set selection uses
    /// `(pid >> shard_bits) % sets`.
    shard_bits: u32,
    /// Mirror-wide clock that stamps every publication with a fresh even
    /// version. Slot-local counters would be ambiguous across *ways*: a
    /// page displaced from one way and republished in the other could, by
    /// coincidence, land on the number an old reader recorded, and that
    /// reader's `(pid, version)` revalidation would pass against changed
    /// content (an ABA). A shared strictly-increasing clock makes every
    /// published image's version unique, so a recorded version can only
    /// ever revalidate against the exact image it came from.
    vclock: AtomicU64,
}

impl Mirror {
    /// A mirror with one slot per frame of the owning shard, grouped into
    /// 2-way sets (a single-frame shard degenerates to one 1-way set; an
    /// odd slot count gives the last set one way).
    pub(super) fn new(slots: usize, shard_bits: u32) -> Self {
        Mirror {
            slots: (0..slots.max(1)).map(|_| MirrorSlot::new()).collect(),
            shard_bits,
            vclock: AtomicU64::new(0),
        }
    }

    /// A fresh even version strictly above everything handed out before.
    /// Callers hold the shard mutex, so the fetch is uncontended; the
    /// atomic exists for the lock-free readers comparing against it.
    fn next_even_version(&self) -> u64 {
        self.vclock.fetch_add(2, Ordering::Relaxed) + 2
    }

    /// The number of sets: slots are consumed two at a time, the odd
    /// remainder forming a final 1-way set.
    fn num_sets(&self) -> usize {
        self.slots.len().div_ceil(2)
    }

    /// The (one or two) slots `pid` may be published in.
    fn set_of(&self, pid: PageId) -> &[MirrorSlot] {
        let set = (pid.0 as usize >> self.shard_bits) % self.num_sets();
        let lo = set * 2;
        &self.slots[lo..(lo + 2).min(self.slots.len())]
    }

    /// The slot of `pid`'s set currently publishing `pid`, if any. The
    /// relaxed pid load makes the answer racy off-mutex (exact under the
    /// shard mutex, where all publishers live); lock-free readers always
    /// re-check through the slot's version protocol.
    fn way_holding(&self, pid: PageId) -> Option<&MirrorSlot> {
        self.set_of(pid).iter().find(|s| s.pid.load(Ordering::Relaxed) == pid.0)
    }

    /// Whether `pid` is currently published (racy answer; exact under the
    /// shard mutex since all publishers hold it).
    pub(super) fn holds(&self, pid: PageId) -> bool {
        self.way_holding(pid).is_some()
    }

    /// The stable version `pid` is currently published at, or `None` if it
    /// is unpublished or mid-update. Lock-free.
    ///
    /// The version is re-checked against the pid *after* the acquire load,
    /// so a slot mid-steal (odd version or repointed pid) never validates.
    pub(super) fn version_of(&self, pid: PageId) -> Option<u64> {
        let slot = self.way_holding(pid)?;
        let v = slot.version.load(Ordering::Acquire);
        (v & 1 == 0 && slot.pid.load(Ordering::Relaxed) == pid.0).then_some(v)
    }

    /// The slot's optimistic-touch recency, if a slot publishes `pid`.
    /// Called under the shard mutex by eviction's victim selection.
    pub(super) fn recency_of(&self, pid: PageId) -> Option<u64> {
        self.way_holding(pid).map(|s| s.last_used.load(Ordering::Relaxed))
    }

    /// Record an optimistic touch of `pid` at shard-clock value `tick`.
    /// Racy by design (no lock); `fetch_max` keeps recency monotonic, and
    /// a touch racing a steal at worst inflates the recency of the slot's
    /// new occupant (recency is a heuristic, never a correctness input).
    pub(super) fn touch(&self, pid: PageId, tick: u64) {
        if let Some(slot) = self.way_holding(pid) {
            slot.last_used.fetch_max(tick, Ordering::Relaxed);
        }
    }

    /// Record the page LSN of `pid`'s newest log record. Called under the
    /// shard mutex right after the durable write path republished the
    /// page, so the LSN always describes the published image.
    pub(super) fn set_lsn(&self, pid: PageId, lsn: u64) {
        if let Some(slot) = self.way_holding(pid) {
            slot.lsn.store(lsn, Ordering::Relaxed);
        }
    }

    /// The page LSN published for `pid`, if a slot holds it. Lock-free.
    pub(super) fn lsn_of(&self, pid: PageId) -> Option<u64> {
        self.way_holding(pid).map(|s| s.lsn.load(Ordering::Relaxed))
    }

    /// Publish `pid`'s current image, bumping the slot version through odd.
    /// Must be called with the shard mutex held (writers never race).
    ///
    /// Way choice within `pid`'s set: the way already publishing `pid`,
    /// else an empty way, else the least-recently-used way is stolen.
    /// `tick` is the publishing touch's LRU tick; it seeds the way's
    /// recency so a just-published page is never the next steal victim.
    /// (For locked touches the same tick is already on the frame, so
    /// eviction's `max(frame, mirror)` — and the frozen ledger — is
    /// unaffected.)
    ///
    /// Returns the displaced page and its recency when the chosen way
    /// previously published a *different* page — the caller folds that
    /// recency back into the displaced page's frame so no LRU information
    /// is lost when a slot is stolen.
    pub(super) fn publish(&self, pid: PageId, page: &Page, tick: u64) -> Option<(PageId, u64)> {
        let set = self.set_of(pid);
        let slot = set
            .iter()
            .find(|s| s.pid.load(Ordering::Relaxed) == pid.0)
            .or_else(|| set.iter().find(|s| s.pid.load(Ordering::Relaxed) == PageId::INVALID.0))
            .unwrap_or_else(|| {
                set.iter()
                    .min_by_key(|s| s.last_used.load(Ordering::Relaxed))
                    .expect("a set has at least one way")
            });
        let old_pid = PageId(slot.pid.load(Ordering::Relaxed));
        let displaced = (old_pid != pid && old_pid.is_valid())
            .then(|| (old_pid, slot.last_used.load(Ordering::Relaxed)));
        let v = slot.version.load(Ordering::Relaxed);
        // Mark odd (readers back off), then a release fence: the odd
        // marker is ordered before the content stores below, so a reader
        // that observes any new word and then re-checks the version
        // (through its acquire fence) sees a moved version and discards
        // the copy.
        slot.version.store(v | 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.pid.store(pid.0, Ordering::Relaxed);
        if displaced.is_some() || old_pid != pid {
            // Fresh occupant: the page LSN restarts from its frame and the
            // recency restarts from this publishing touch's tick.
            slot.last_used.store(tick, Ordering::Relaxed);
            slot.lsn.store(0, Ordering::Relaxed);
        } else {
            slot.last_used.fetch_max(tick, Ordering::Relaxed);
        }
        page.store_atomic_words(&slot.words);
        // Stable again, at a clock-unique even version (never any value a
        // reader could have recorded for other content — see `vclock`).
        slot.version.store(self.next_even_version(), Ordering::Release);
        displaced
    }

    /// Unpublish `pid` if a slot currently publishes it (eviction path).
    /// Must be called with the shard mutex held.
    pub(super) fn invalidate(&self, pid: PageId) {
        let Some(slot) = self.way_holding(pid) else {
            return;
        };
        let v = slot.version.load(Ordering::Relaxed);
        slot.version.store(v | 1, Ordering::Relaxed);
        std::sync::atomic::fence(Ordering::Release);
        slot.pid.store(PageId::INVALID.0, Ordering::Relaxed);
        slot.last_used.store(0, Ordering::Relaxed);
        slot.lsn.store(0, Ordering::Relaxed);
        slot.version.store(self.next_even_version(), Ordering::Release);
    }

    /// Unpublish every slot and force every version even (defensive: a
    /// version that somehow stayed odd would permanently poison its slot
    /// for optimistic readers). Used by `clear` and `reset_stats`; must be
    /// called with the shard mutex held and readers quiesced-or-retrying.
    pub(super) fn reset(&self) {
        for slot in self.slots.iter() {
            slot.pid.store(PageId::INVALID.0, Ordering::Relaxed);
            slot.last_used.store(0, Ordering::Relaxed);
            slot.lsn.store(0, Ordering::Relaxed);
            // A fresh clock version: readers holding a pre-reset version
            // always fail revalidation.
            slot.version.store(self.next_even_version(), Ordering::Release);
        }
    }

    /// Force any slot stuck at an odd version back to a stable state
    /// (unpublished, even version), leaving healthy slots untouched.
    /// Defensive companion of [`Mirror::reset`] used by `reset_stats`:
    /// publishers complete their version bumps under the shard mutex, so
    /// an odd version here indicates a bug — but left alone it would
    /// silently poison the slot for optimistic readers forever.
    pub(super) fn repair(&self) {
        for slot in self.slots.iter() {
            let v = slot.version.load(Ordering::Relaxed);
            if v & 1 == 1 {
                slot.pid.store(PageId::INVALID.0, Ordering::Relaxed);
                slot.last_used.store(0, Ordering::Relaxed);
                slot.version.store(self.next_even_version(), Ordering::Release);
            }
        }
    }

    /// Attempt a lock-free snapshot of `pid` into `scratch`. See
    /// [`TryRead`] for the outcomes; on [`TryRead::Hit`] the scratch page
    /// is a consistent image published at the returned version.
    pub(super) fn try_read(&self, pid: PageId, scratch: &mut Page) -> TryRead {
        let Some(slot) = self.way_holding(pid) else {
            return TryRead::Unpublished;
        };
        let v1 = slot.version.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return TryRead::Conflict;
        }
        if slot.pid.load(Ordering::Relaxed) != pid.0 {
            return TryRead::Unpublished;
        }
        scratch.load_atomic_words(&slot.words);
        // Acquire fence: the word loads above cannot drift after this
        // re-load of the version.
        std::sync::atomic::fence(Ordering::Acquire);
        if slot.version.load(Ordering::Relaxed) != v1 {
            return TryRead::Conflict;
        }
        // The pid could only change together with the version, so the
        // snapshot is both untorn and the right page.
        TryRead::Hit(v1)
    }
}
