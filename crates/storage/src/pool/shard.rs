//! Shard-local state of the sharded buffer pool: the frame table and its
//! LRU bookkeeping.
//!
//! One [`PoolShard`] lives behind each of the pool's lock shards. Nothing
//! in this module takes a lock — [`super::BufferPool`] owns all locking
//! and the shard ↔ disk interplay — so the types here are plain mutable
//! state and their methods are trivially deterministic: given the same
//! sequence of calls, a shard makes the same eviction decisions.

use std::collections::HashMap;

use crate::page::{Page, PageId};
use crate::pool::IoStats;

/// One resident page plus its buffer-management metadata.
pub(super) struct Frame {
    /// The cached page contents.
    pub(super) page: Page,
    /// Whether the cached contents differ from the disk copy. A dirty
    /// frame is written back (and counted) on eviction, flush, or clear.
    pub(super) dirty: bool,
    /// Shard-local LRU clock value of the frame's most recent touch.
    pub(super) last_used: u64,
}

/// A bounded `PageId → Frame` map with least-recently-used victim
/// selection.
///
/// The table never holds more than `capacity` frames: callers evict via
/// [`FrameTable::take_victim`] while [`FrameTable::is_full`] before
/// inserting. Victim selection is deterministic because every resident
/// frame carries a distinct `last_used` tick (the owning shard's clock
/// advances on every touch), so the minimum is unique.
pub(super) struct FrameTable {
    frames: HashMap<PageId, Frame>,
    capacity: usize,
}

impl FrameTable {
    /// An empty table that will hold at most `capacity` frames.
    pub(super) fn new(capacity: usize) -> Self {
        debug_assert!(capacity >= 1, "every pool shard owns at least one frame");
        FrameTable { frames: HashMap::with_capacity(capacity + 1), capacity }
    }

    /// Number of resident frames.
    pub(super) fn len(&self) -> usize {
        self.frames.len()
    }

    /// Maximum number of resident frames.
    pub(super) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether an insert must be preceded by an eviction.
    pub(super) fn is_full(&self) -> bool {
        self.frames.len() >= self.capacity
    }

    /// Whether `pid` is resident.
    pub(super) fn contains(&self, pid: PageId) -> bool {
        self.frames.contains_key(&pid)
    }

    /// Mutable access to a resident frame.
    pub(super) fn get_mut(&mut self, pid: PageId) -> Option<&mut Frame> {
        self.frames.get_mut(&pid)
    }

    /// Make `pid` resident. The caller must have evicted first if the
    /// table was full.
    pub(super) fn insert(&mut self, pid: PageId, frame: Frame) {
        debug_assert!(self.frames.len() < self.capacity);
        self.frames.insert(pid, frame);
    }

    /// Remove and return the least-recently-used frame, if any. The
    /// caller writes it back to disk when dirty.
    pub(super) fn take_victim(&mut self) -> Option<(PageId, Frame)> {
        let victim = self.frames.iter().min_by_key(|(_, f)| f.last_used).map(|(pid, _)| *pid)?;
        let frame = self.frames.remove(&victim).expect("victim resident");
        Some((victim, frame))
    }

    /// Remove every frame, returning them for write-back.
    pub(super) fn drain(&mut self) -> Vec<(PageId, Frame)> {
        self.frames.drain().collect()
    }

    /// Iterate over all resident frames mutably (flush path).
    pub(super) fn iter_mut(&mut self) -> impl Iterator<Item = (&PageId, &mut Frame)> {
        self.frames.iter_mut()
    }
}

/// Everything one lock shard protects: its slice of the frame budget, its
/// own LRU clock, and its local slice of the I/O ledger.
///
/// Keeping the clock and counters shard-local is what makes the buffer-hit
/// fast path touch *only* this shard's lock; [`super::BufferPool::stats`]
/// reconstitutes the pool-wide ledger by summing the per-shard counters.
pub(super) struct PoolShard {
    /// The shard's resident pages.
    pub(super) table: FrameTable,
    /// Shard-local LRU clock; advances on every touch, so `last_used`
    /// values within a shard are distinct and eviction is deterministic.
    pub(super) tick: u64,
    /// Shard-local I/O counters (summed across shards by `stats()`).
    pub(super) stats: IoStats,
}

impl PoolShard {
    /// An empty shard owning `capacity` frames of the pool's budget.
    pub(super) fn new(capacity: usize) -> Self {
        PoolShard { table: FrameTable::new(capacity), tick: 0, stats: IoStats::default() }
    }
}
