//! Shard-local state of the sharded buffer pool: the frame table and its
//! LRU bookkeeping.
//!
//! One [`PoolShard`] lives behind each of the pool's lock shards. Nothing
//! in this module takes a lock — [`super::BufferPool`] owns all locking
//! and the shard ↔ disk interplay — so the types here are plain mutable
//! state and their methods are trivially deterministic: given the same
//! sequence of calls, a shard makes the same eviction decisions.
//!
//! The shard's LRU *clock* does not live here: it is an atomic beside the
//! mutex (see `ShardState` in the parent module) because optimistic reads
//! advance it without taking the lock. A frame's `last_used` records only
//! the page's most recent **locked** touch; optimistic touches land in
//! the shard's lock-free mirror and are folded in by
//! [`FrameTable::take_victim_by`]'s caller-supplied recency function.

use std::collections::HashMap;

use crate::page::{Page, PageId};
use crate::pool::IoStats;

/// One resident page plus its buffer-management metadata.
pub(super) struct Frame {
    /// The cached page contents.
    pub(super) page: Page,
    /// Whether the cached contents differ from the disk copy. A dirty
    /// frame is written back (and counted) on eviction, flush, or clear.
    pub(super) dirty: bool,
    /// Shard clock value of the frame's most recent *locked* touch (see
    /// the module docs for where optimistic touches live).
    pub(super) last_used: u64,
    /// LSN of the newest log record covering this frame's content (0 when
    /// the frame was never written under durability). The pool forces the
    /// log durable up to this LSN before the frame may reach the data
    /// disk — the log-before-page rule.
    pub(super) lsn: u64,
    /// Whether the frame is pinned resident: its disk sector is
    /// quarantined (read-repair failed twice), so the frame — backed by
    /// the WAL's post-image — is the page's only trustworthy copy and must
    /// never be evicted or flushed back to the bad sector.
    pub(super) pinned: bool,
}

/// A bounded `PageId → Frame` map with least-recently-used victim
/// selection.
///
/// The table never holds more than `capacity` frames: callers evict via
/// [`FrameTable::take_victim_by`] while [`FrameTable::is_full`] before
/// inserting. Victim selection is deterministic because every resident
/// frame carries a distinct effective recency (the owning shard's clock
/// advances on every touch, locked or optimistic), so the minimum is
/// unique.
pub(super) struct FrameTable {
    frames: HashMap<PageId, Frame>,
    capacity: usize,
}

impl FrameTable {
    /// An empty table that will hold at most `capacity` frames.
    pub(super) fn new(capacity: usize) -> Self {
        debug_assert!(capacity >= 1, "every pool shard owns at least one frame");
        FrameTable { frames: HashMap::with_capacity(capacity + 1), capacity }
    }

    /// Number of resident frames.
    pub(super) fn len(&self) -> usize {
        self.frames.len()
    }

    /// Maximum number of resident frames.
    pub(super) fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether an insert must be preceded by an eviction.
    pub(super) fn is_full(&self) -> bool {
        self.frames.len() >= self.capacity
    }

    /// Whether `pid` is resident.
    pub(super) fn contains(&self, pid: PageId) -> bool {
        self.frames.contains_key(&pid)
    }

    /// Shared access to a resident frame.
    pub(super) fn get(&self, pid: PageId) -> Option<&Frame> {
        self.frames.get(&pid)
    }

    /// Mutable access to a resident frame.
    pub(super) fn get_mut(&mut self, pid: PageId) -> Option<&mut Frame> {
        self.frames.get_mut(&pid)
    }

    /// Make `pid` resident. The caller must have evicted first if the
    /// table was full — unless eviction found no victim because every
    /// frame is pinned (quarantined), in which case the table may
    /// transiently exceed its budget rather than lose a page whose only
    /// good copy is in memory.
    pub(super) fn insert(&mut self, pid: PageId, frame: Frame) {
        debug_assert!(
            self.frames.len() < self.capacity + self.pinned_count(),
            "insert without eviction on a full shard with no pinned frames"
        );
        self.frames.insert(pid, frame);
    }

    /// Remove and return the unpinned frame with the lowest recency as
    /// computed by `recency` (the caller folds in optimistic touches from
    /// the mirror). Pinned (quarantined) frames are never victims. The
    /// caller writes the victim back to disk when dirty.
    pub(super) fn take_victim_by(
        &mut self,
        recency: impl Fn(PageId, &Frame) -> u64,
    ) -> Option<(PageId, Frame)> {
        let victim = self
            .frames
            .iter()
            .filter(|(_, f)| !f.pinned)
            .min_by_key(|(pid, f)| recency(**pid, f))
            .map(|(pid, _)| *pid)?;
        let frame = self.frames.remove(&victim).expect("victim resident");
        Some((victim, frame))
    }

    /// Remove every unpinned frame, returning them for write-back. Pinned
    /// (quarantined) frames stay resident: their disk sector holds bad
    /// bytes, so dropping the in-memory copy would lose the page.
    pub(super) fn drain_evictable(&mut self) -> Vec<(PageId, Frame)> {
        let evictable: Vec<PageId> =
            self.frames.iter().filter(|(_, f)| !f.pinned).map(|(pid, _)| *pid).collect();
        evictable
            .into_iter()
            .map(|pid| {
                let frame = self.frames.remove(&pid).expect("listed frame resident");
                (pid, frame)
            })
            .collect()
    }

    /// Number of pinned (quarantined) resident frames.
    pub(super) fn pinned_count(&self) -> usize {
        self.frames.values().filter(|f| f.pinned).count()
    }

    /// Page ids of the pinned (quarantined) resident frames, ascending.
    pub(super) fn pinned_pids(&self) -> Vec<PageId> {
        let mut pids: Vec<PageId> =
            self.frames.iter().filter(|(_, f)| f.pinned).map(|(pid, _)| *pid).collect();
        pids.sort_unstable();
        pids
    }

    /// All resident page ids in ascending order. The flush paths iterate
    /// in this order so the sequence of disk writes — and therefore every
    /// crash-injection op index — is deterministic (the map itself
    /// iterates in arbitrary order).
    pub(super) fn sorted_pids(&self) -> Vec<PageId> {
        let mut pids: Vec<PageId> = self.frames.keys().copied().collect();
        pids.sort_unstable();
        pids
    }

    /// Number of resident frames whose content differs from disk.
    pub(super) fn dirty_count(&self) -> usize {
        self.frames.values().filter(|f| f.dirty).count()
    }
}

/// Everything one lock shard's **mutex** protects: its slice of the frame
/// budget and its local slice of the I/O ledger. (The shard clock, the
/// versioned page mirror, and the lock-statistics counters sit beside the
/// mutex as atomics — see `ShardState` in the parent module.)
///
/// Keeping the counters shard-local is what makes the buffer-hit locked
/// path touch *only* this shard's lock; [`super::BufferPool::stats`]
/// reconstitutes the pool-wide ledger by summing the per-shard counters.
pub(super) struct PoolShard {
    /// The shard's resident pages.
    pub(super) table: FrameTable,
    /// Shard-local I/O counters for *locked* accesses (summed with the
    /// shard's atomic optimistic counters by `stats()`).
    pub(super) stats: IoStats,
}

impl PoolShard {
    /// An empty shard owning `capacity` frames of the pool's budget.
    pub(super) fn new(capacity: usize) -> Self {
        PoolShard { table: FrameTable::new(capacity), stats: IoStats::default() }
    }
}
