//! Sharded LRU buffer pool in front of the simulated disk.
//!
//! The pool is the unit both indexes talk to, and — since the index cores
//! went lock-per-partition — it is the hottest shared state in the system:
//! every page touch, even a buffer hit, must update LRU recency and the
//! I/O counters. To keep that off the global critical path the pool is
//! **sharded**: a [`PageId`] hashes to one of N lock shards (N a power of
//! two), and each shard owns
//!
//! * its own frame table (its slice of the frame budget),
//! * its own LRU clock, and
//! * its own slice of the [`IoStats`] ledger.
//!
//! A buffer **hit** therefore takes exactly one lock — the owning shard's
//! — and hits on different shards never contend. Only a **miss** (or a
//! dirty eviction) additionally takes the shared disk lock, mirroring the
//! real-world cost structure where hits are memory-speed and misses pay
//! for I/O anyway.
//!
//! # Lock ordering
//!
//! `shard lock → disk lock`, and never more than one shard lock at a
//! time. The disk lock is only ever acquired while holding at most one
//! shard lock, and no code path acquires a shard lock while holding the
//! disk lock, so the hierarchy is acyclic and deadlock-free. (Index-level
//! locks sit *above* both: index shard → pool shard → disk.)
//!
//! # Determinism and the paper's I/O ledger
//!
//! [`BufferPool::stats`] sums the per-shard counters, so the paper's
//! single I/O ledger stays exact regardless of the shard count. Eviction
//! *within* a shard is deterministic (distinct LRU ticks, unique victim),
//! so any single-threaded page-access trace produces identical counters
//! on every run for a fixed shard count. Across *different* shard counts
//! the counters legitimately differ — N shards are N independent LRU
//! domains, not one global LRU — which is why the frozen benchmark
//! configurations pin `shards = 1`: [`BufferPool::new`] is the
//! paper-exact configuration and behaves identically to the original
//! single-mutex pool, byte for byte. [`BufferPool::sharded`] is the
//! concurrent-serving configuration.
//!
//! # Capacity split
//!
//! A total budget of `capacity` frames over `n` shards gives shard `i`
//! `capacity / n` frames plus one extra if `i < capacity % n` (the
//! remainder goes to the lowest-numbered shards). The shard count is
//! clamped so every shard owns at least one frame.

mod shard;

use parking_lot::Mutex;

use crate::disk::DiskSim;
use crate::page::{Page, PageId};
use shard::{Frame, PoolShard};

/// I/O counters accumulated by a [`BufferPool`].
///
/// `physical_reads` is the paper's "I/O cost" for read-only workloads;
/// queries report `physical_reads + physical_writes` (writes only occur for
/// dirty evictions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer misses that had to go to disk.
    pub physical_reads: u64,
    /// Dirty pages written back on eviction or flush.
    pub physical_writes: u64,
    /// All page requests, hits included.
    pub logical_reads: u64,
}

impl IoStats {
    /// Total physical page accesses — the paper's I/O cost metric.
    pub fn total_io(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio over the logical accesses seen so far.
    ///
    /// An untouched pool (zero logical reads) reports `1.0`: no access
    /// has ever missed, so "all hits so far" is the truthful reading —
    /// returning `0.0` would make a fresh pool look like it thrashes.
    ///
    /// ```
    /// use peb_storage::IoStats;
    ///
    /// let untouched = IoStats::default();
    /// assert_eq!(untouched.hit_ratio(), 1.0);
    ///
    /// let warm = IoStats { physical_reads: 3, physical_writes: 0, logical_reads: 10 };
    /// assert_eq!(warm.hit_ratio(), 0.7);
    /// ```
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            return 1.0;
        }
        1.0 - self.physical_reads as f64 / self.logical_reads as f64
    }

    /// Element-wise sum of two counter sets (shard aggregation).
    pub fn merged(&self, other: &IoStats) -> IoStats {
        IoStats {
            physical_reads: self.physical_reads + other.physical_reads,
            physical_writes: self.physical_writes + other.physical_writes,
            logical_reads: self.logical_reads + other.logical_reads,
        }
    }
}

/// The shared buffer manager: a sharded LRU page cache over a
/// [`DiskSim`]. See the [module docs](self) for the sharding, locking,
/// and determinism contract.
pub struct BufferPool {
    /// The lock shards; length is always a power of two.
    shards: Box<[Mutex<PoolShard>]>,
    /// `shards.len() - 1`, used to mask a page id onto its shard.
    shard_mask: usize,
    /// Total frame budget across all shards.
    total_capacity: usize,
    /// The simulated disk, behind its own lock **below** every shard lock.
    disk: Mutex<DiskSim>,
}

/// The default shard count: the next power of two at or above the
/// machine's available parallelism (1 if parallelism cannot be queried).
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).next_power_of_two()
}

impl BufferPool {
    /// A single-shard pool holding at most `capacity` pages (the paper
    /// uses 50).
    ///
    /// One shard means one LRU domain over the whole budget — exactly the
    /// original single-mutex pool, byte-identical counters included. This
    /// is the right configuration for reproducing the paper's I/O numbers
    /// and is what every frozen benchmark configuration uses; use
    /// [`BufferPool::sharded`] when serving concurrent readers.
    pub fn new(capacity: usize) -> Self {
        BufferPool::with_shards(capacity, 1)
    }

    /// A pool sharded for concurrent access: [`default_shard_count`] lock
    /// shards (clamped so each owns at least one of the `capacity`
    /// frames).
    pub fn sharded(capacity: usize) -> Self {
        BufferPool::with_shards(capacity, default_shard_count())
    }

    /// A pool with an explicit shard count.
    ///
    /// `shards` is rounded up to a power of two, then halved until every
    /// shard owns at least one frame. The `capacity` budget is split per
    /// the remainder rule: shard `i` of `n` gets `capacity / n + 1` frames
    /// if `i < capacity % n`, else `capacity / n`.
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::with_shards(10, 4);
    /// assert_eq!(pool.num_shards(), 4);
    /// assert_eq!(pool.shard_capacities(), vec![3, 3, 2, 2]);
    ///
    /// // Clamped: 8 shards cannot each own a frame of a 2-frame budget.
    /// assert_eq!(BufferPool::with_shards(2, 8).num_shards(), 2);
    /// ```
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        assert!(shards >= 1, "buffer pool needs at least one shard");
        let mut n = shards.next_power_of_two();
        while n > capacity {
            n >>= 1;
        }
        let (base, rem) = (capacity / n, capacity % n);
        let shards: Box<[Mutex<PoolShard>]> =
            (0..n).map(|i| Mutex::new(PoolShard::new(base + usize::from(i < rem)))).collect();
        BufferPool {
            shards,
            shard_mask: n - 1,
            total_capacity: capacity,
            disk: Mutex::new(DiskSim::new()),
        }
    }

    /// The shard a page id maps to: the id's low bits. Pages are
    /// allocated sequentially, so consecutive pages (e.g. neighboring
    /// B+-tree leaves) round-robin across shards.
    pub fn shard_of(&self, pid: PageId) -> usize {
        pid.0 as usize & self.shard_mask
    }

    /// Allocate a fresh zeroed page; it becomes resident and dirty so the
    /// first write-back is counted like any other.
    pub fn allocate(&self) -> PageId {
        // Disk lock first for the id, *released* before the shard lock —
        // the ordering shard → disk must never be inverted.
        let pid = self.disk.lock().allocate();
        let s = &mut *self.shards[self.shard_of(pid)].lock();
        if s.table.is_full() {
            Self::evict_one(s, &self.disk);
        }
        s.tick += 1;
        let tick = s.tick;
        s.table.insert(pid, Frame { page: Page::new(), dirty: true, last_used: tick });
        pid
    }

    /// Read access to a page through the buffer. A hit takes only the
    /// owning shard's lock.
    pub fn read<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> R {
        self.with_page(pid, false, |page| f(page))
    }

    /// Write access to a page through the buffer; marks the frame dirty.
    pub fn write<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        self.with_page(pid, true, f)
    }

    /// Fetch `pid` into its shard (counting a hit or a miss), bump LRU
    /// recency, and run `f` on the frame under the shard lock.
    fn with_page<R>(&self, pid: PageId, mark_dirty: bool, f: impl FnOnce(&mut Page) -> R) -> R {
        let s = &mut *self.shards[self.shard_of(pid)].lock();
        s.tick += 1;
        s.stats.logical_reads += 1;
        if !s.table.contains(pid) {
            if s.table.is_full() {
                Self::evict_one(s, &self.disk);
            }
            s.stats.physical_reads += 1;
            let page = self.disk.lock().read(pid);
            s.table.insert(pid, Frame { page, dirty: false, last_used: 0 });
        }
        let tick = s.tick;
        let frame = s.table.get_mut(pid).expect("frame resident after fetch");
        frame.last_used = tick;
        if mark_dirty {
            frame.dirty = true;
        }
        f(&mut frame.page)
    }

    /// Evict the shard's LRU frame, writing it back (counted) if dirty.
    /// Caller holds the shard lock; the disk lock is taken below it.
    fn evict_one(s: &mut PoolShard, disk: &Mutex<DiskSim>) {
        let (vpid, frame) = s.table.take_victim().expect("evict called on empty shard");
        if frame.dirty {
            s.stats.physical_writes += 1;
            disk.lock().write(vpid, &frame.page);
        }
    }

    /// Write every dirty frame back to disk (counted), keeping residency.
    pub fn flush_all(&self) {
        for shard in self.shards.iter() {
            let s = &mut *shard.lock();
            let mut disk = self.disk.lock();
            for (pid, frame) in s.table.iter_mut() {
                if frame.dirty {
                    s.stats.physical_writes += 1;
                    disk.write(*pid, &frame.page);
                    frame.dirty = false;
                }
            }
        }
    }

    /// Drop every frame (writing back dirty ones). Used by experiments to
    /// cold-start the buffer between measurement rounds.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let s = &mut *shard.lock();
            let mut disk = self.disk.lock();
            for (pid, frame) in s.table.drain() {
                if frame.dirty {
                    s.stats.physical_writes += 1;
                    disk.write(pid, &frame.page);
                }
            }
        }
    }

    /// The pool-wide I/O ledger: the element-wise sum of every shard's
    /// counters, so the paper's single set of numbers survives sharding.
    /// Shards are read one lock at a time, so under concurrent traffic
    /// this is a read-committed aggregate, exact once accesses quiesce
    /// (any single-threaded measurement reads exact totals).
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::new(4);
    /// let pid = pool.allocate();
    /// pool.clear(); // evict, so the next read must go to disk
    /// pool.reset_stats();
    ///
    /// pool.read(pid, |_| ()); // miss: 1 physical read
    /// pool.read(pid, |_| ()); // hit: free
    ///
    /// let s = pool.stats();
    /// assert_eq!(s.logical_reads, 2);
    /// assert_eq!(s.physical_reads, 1);
    /// assert_eq!(s.total_io(), 1); // physical reads + writes — the paper's metric
    /// assert_eq!(s.hit_ratio(), 0.5); // 1 hit out of 2 logical reads
    /// ```
    pub fn stats(&self) -> IoStats {
        self.shards.iter().fold(IoStats::default(), |acc, s| acc.merged(&s.lock().stats))
    }

    /// Each shard's local I/O counters, in shard order. `stats()` is
    /// exactly the element-wise sum of these.
    pub fn shard_stats(&self) -> Vec<IoStats> {
        self.shards.iter().map(|s| s.lock().stats).collect()
    }

    /// Zero every shard's counters.
    pub fn reset_stats(&self) {
        for shard in self.shards.iter() {
            shard.lock().stats = IoStats::default();
        }
    }

    /// Total frame budget across all shards.
    pub fn capacity(&self) -> usize {
        self.total_capacity
    }

    /// Number of lock shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Each shard's frame budget, in shard order; sums to
    /// [`BufferPool::capacity`] (see the remainder rule in the module
    /// docs).
    pub fn shard_capacities(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.lock().table.capacity()).collect()
    }

    /// Frames currently resident across all shards; never exceeds
    /// [`BufferPool::capacity`].
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.lock().table.len()).sum()
    }

    /// Pages allocated on the simulated disk.
    pub fn num_disk_pages(&self) -> usize {
        self.disk.lock().num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_free_misses_cost_one_read() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        pool.reset_stats();
        for _ in 0..10 {
            pool.read(pid, |p| p.get_u64(0));
        }
        let s = pool.stats();
        assert_eq!(s.physical_reads, 0, "resident page never touches disk");
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.hit_ratio(), 1.0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        let a = pool.allocate();
        let b = pool.allocate(); // pool now holds {a, b}
        pool.read(a, |_| ()); // a is now more recent than b
        let c = pool.allocate(); // must evict b
        pool.reset_stats();
        pool.read(a, |_| ());
        pool.read(c, |_| ());
        assert_eq!(pool.stats().physical_reads, 0, "a and c stayed resident");
        pool.read(b, |_| ());
        assert_eq!(pool.stats().physical_reads, 1, "b was the LRU victim");
    }

    #[test]
    fn dirty_eviction_writes_back_and_preserves_data() {
        let pool = BufferPool::new(1);
        let a = pool.allocate();
        pool.write(a, |p| p.put_u64(0, 77));
        let _b = pool.allocate(); // evicts dirty a -> physical write
        assert!(pool.stats().physical_writes >= 1);
        // Reading a again must see the written value (via disk).
        assert_eq!(pool.read(a, |p| p.get_u64(0)), 77);
    }

    #[test]
    fn flush_and_clear_round_trip() {
        let pool = BufferPool::new(8);
        let pids: Vec<PageId> = (0..5).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u32(0, i as u32));
        }
        pool.flush_all();
        pool.clear();
        pool.reset_stats();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.read(*pid, |p| p.get_u32(0)), i as u32);
        }
        // All 5 were cold: exactly 5 physical reads.
        assert_eq!(pool.stats().physical_reads, 5);
    }

    #[test]
    fn total_io_combines_reads_and_writes() {
        let s = IoStats { physical_reads: 3, physical_writes: 2, logical_reads: 10 };
        assert_eq!(s.total_io(), 5);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn untouched_pool_reports_perfect_hit_ratio() {
        // Documented choice: zero logical reads means nothing ever missed.
        assert_eq!(IoStats::default().hit_ratio(), 1.0);
        let pool = BufferPool::new(4);
        assert_eq!(pool.stats().hit_ratio(), 1.0);
        // One miss drops it to 0.0; a subsequent hit brings it to 0.5.
        let pid = pool.allocate();
        pool.clear();
        pool.reset_stats();
        pool.read(pid, |_| ());
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.read(pid, |_| ());
        assert_eq!(pool.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn workload_larger_than_pool_thrashes() {
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..16).map(|_| pool.allocate()).collect();
        pool.clear();
        pool.reset_stats();
        // Sequential scan twice: with only 4 frames over 16 pages every
        // access misses.
        for _ in 0..2 {
            for pid in &pids {
                pool.read(*pid, |_| ());
            }
        }
        assert_eq!(pool.stats().physical_reads, 32);
    }

    #[test]
    fn capacity_splits_with_remainder_to_low_shards() {
        let pool = BufferPool::with_shards(11, 4);
        assert_eq!(pool.num_shards(), 4);
        assert_eq!(pool.shard_capacities(), vec![3, 3, 3, 2]);
        assert_eq!(pool.capacity(), 11);

        // Power-of-two rounding (3 -> 4) and clamping (each shard >= 1).
        assert_eq!(BufferPool::with_shards(12, 3).num_shards(), 4);
        assert_eq!(BufferPool::with_shards(3, 16).num_shards(), 2);
        assert_eq!(BufferPool::with_shards(1, 16).num_shards(), 1);
    }

    #[test]
    fn sharded_pool_preserves_data_and_sums_stats() {
        let pool = BufferPool::with_shards(8, 4);
        let pids: Vec<PageId> = (0..32).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u64(0, i as u64 * 7));
        }
        pool.clear();
        pool.reset_stats();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.read(*pid, |p| p.get_u64(0)), i as u64 * 7);
        }
        let total = pool.stats();
        assert_eq!(total.logical_reads, 32);
        assert_eq!(total.physical_reads, 32, "all cold after clear");
        let summed = pool.shard_stats().iter().fold(IoStats::default(), |acc, s| acc.merged(s));
        assert_eq!(total, summed, "stats() is the sum of per-shard counters");
        assert!(pool.resident_pages() <= pool.capacity());
    }

    #[test]
    fn shard_of_uses_low_bits_round_robin() {
        let pool = BufferPool::with_shards(16, 4);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        let shards: Vec<usize> = pids.iter().map(|p| pool.shard_of(*p)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn eviction_is_per_shard_and_respects_budgets() {
        // 2 shards x 2 frames. Four pages of shard 0 thrash its 2 frames
        // while shard 1's residents survive untouched.
        let pool = BufferPool::with_shards(4, 2);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        let s0: Vec<PageId> = pids.iter().copied().filter(|p| pool.shard_of(*p) == 0).collect();
        let s1: Vec<PageId> = pids.iter().copied().filter(|p| pool.shard_of(*p) == 1).collect();
        pool.clear();
        // Warm shard 1 with its first two pages.
        pool.read(s1[0], |_| ());
        pool.read(s1[1], |_| ());
        pool.reset_stats();
        // Cycle all four shard-0 pages twice: every access misses.
        for _ in 0..2 {
            for pid in &s0 {
                pool.read(*pid, |_| ());
            }
        }
        assert_eq!(pool.stats().physical_reads, 8, "shard 0 thrashes");
        pool.read(s1[0], |_| ());
        pool.read(s1[1], |_| ());
        assert_eq!(
            pool.stats().physical_reads,
            8,
            "shard 1 residents were never evicted by shard 0 pressure"
        );
    }
}
