//! Sharded LRU buffer pool with a lock-free optimistic read path in front
//! of the simulated disk.
//!
//! The pool is the unit both indexes talk to, and — since the index cores
//! went lock-per-partition — it is the hottest shared state in the system:
//! every page touch, even a buffer hit, must update LRU recency and the
//! I/O counters. Two mechanisms keep that off the global critical path:
//!
//! 1. **Lock sharding** (PR 3): a [`PageId`] hashes to one of N lock
//!    shards (N a power of two), each owning its own frame table (its
//!    slice of the frame budget), its own LRU clock, and its own slice of
//!    the [`IoStats`] ledger. A locked hit takes exactly one mutex — the
//!    owning shard's — and hits on different shards never contend.
//! 2. **Versioned pages** (this PR): beside each shard's mutex sits a
//!    lock-free *mirror* of its resident pages, each published
//!    under a seqlock-style version counter (even = stable, odd = write
//!    in progress; bumped by [`BufferPool::write`] and eviction).
//!    [`BufferPool::try_read_optimistic`] copies a page out **under no
//!    lock**, validating the version before and after the copy, so a
//!    warm read-mostly workload stops acquiring mutexes at all; the
//!    locked [`BufferPool::read`] remains the universal fallback. The
//!    [`LockStats`] ledger counts how often each path ran.
//!
//! Only a **miss** (or a dirty eviction) additionally takes the shared
//! disk lock, mirroring the real-world cost structure where hits are
//! memory-speed and misses pay for I/O anyway.
//!
//! # Lock ordering
//!
//! `shard lock → wal lock → disk lock`, and never more than one shard
//! lock at a time. The disk lock is only ever acquired while holding at
//! most one shard lock, no code path acquires a shard lock while holding
//! the disk or wal lock, and the wal lock is taken while holding at most
//! one shard lock (the log owns its own disk region and never touches
//! shards or the data disk), so the hierarchy is acyclic and
//! deadlock-free. (Index-level locks sit *above* all three: index shard →
//! pool shard → wal → disk.) The optimistic path acquires nothing, so it
//! cannot participate in a cycle.
//!
//! # Determinism and the paper's I/O ledger
//!
//! [`BufferPool::stats`] sums the per-shard counters (locked and
//! optimistic), so the paper's single I/O ledger stays exact regardless
//! of the shard count or the read path taken: a successful optimistic
//! read counts one logical read and zero physical reads — exactly what
//! the locked read of the same resident page would have counted — and a
//! failed attempt counts nothing (the locked fallback that follows does
//! the counting). That makes any single-threaded execution ledger-
//! identical to its locked-only equivalent. Under *concurrent* page
//! writers a traversal that restarts after a mid-descent version
//! conflict legitimately re-counts the pages it re-reads — those touches
//! really happen — so logical counts can exceed a hypothetical
//! conflict-free serial replay; physical counts still reflect actual
//! disk traffic. Optimistic touches also advance the shard's LRU clock
//! and record their recency in the mirror, which eviction folds back in,
//! so the single-shard default configuration makes byte-for-byte the
//! same eviction decisions as the seed single-mutex pool
//! (`crates/bench/tests/frozen_io.rs` pins this). Across *different*
//! shard counts the counters legitimately differ — N shards are N
//! independent LRU domains — which is why the frozen benchmark
//! configurations pin `shards = 1` via [`BufferPool::new`];
//! [`BufferPool::sharded`] is the concurrent-serving configuration.
//!
//! # Capacity split
//!
//! A total budget of `capacity` frames over `n` shards gives shard `i`
//! `capacity / n` frames plus one extra if `i < capacity % n` (the
//! remainder goes to the lowest-numbered shards). The shard count is
//! clamped so every shard owns at least one frame.

mod latch;
mod mirror;
mod shard;

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use peb_common::clock::TickClock;

use crate::disk::{DiskSim, FaultInjector, IoFault, LatencyInjector};
use crate::page::{Page, PageId};
use crate::wal::{CrashInjector, CrashPoint, Wal, WalRecord, WalStats};
use latch::LatchTable;
pub use latch::PageLatch;
use mirror::{Mirror, TryRead};
use shard::{Frame, PoolShard};

/// How many times a transient device error is retried before it surfaces
/// as a typed [`IoFault::Transient`]. Retry `k` (1-based) adds `2^k`
/// deterministic backoff ticks to [`FaultStats::backoff_ticks`] — a
/// simulated-time ledger, not a wall-clock sleep, so faulty runs stay
/// exactly reproducible.
pub const TRANSIENT_RETRIES: u32 = 3;

/// I/O counters accumulated by a [`BufferPool`].
///
/// `physical_reads` is the paper's "I/O cost" for read-only workloads;
/// queries report `physical_reads + physical_writes` (writes only occur for
/// dirty evictions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer misses that had to go to disk.
    pub physical_reads: u64,
    /// Dirty pages written back on eviction or flush.
    pub physical_writes: u64,
    /// All page requests, hits included (locked and optimistic alike).
    pub logical_reads: u64,
}

impl IoStats {
    /// Total physical page accesses — the paper's I/O cost metric.
    pub fn total_io(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio over the logical accesses seen so far.
    ///
    /// An untouched pool (zero logical reads) reports `1.0`: no access
    /// has ever missed, so "all hits so far" is the truthful reading —
    /// returning `0.0` would make a fresh pool look like it thrashes.
    ///
    /// ```
    /// use peb_storage::IoStats;
    ///
    /// let untouched = IoStats::default();
    /// assert_eq!(untouched.hit_ratio(), 1.0);
    ///
    /// let warm = IoStats { physical_reads: 3, physical_writes: 0, logical_reads: 10 };
    /// assert_eq!(warm.hit_ratio(), 0.7);
    /// ```
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            return 1.0;
        }
        1.0 - self.physical_reads as f64 / self.logical_reads as f64
    }

    /// Element-wise sum of two counter sets (shard aggregation).
    pub fn merged(&self, other: &IoStats) -> IoStats {
        IoStats {
            physical_reads: self.physical_reads + other.physical_reads,
            physical_writes: self.physical_writes + other.physical_writes,
            logical_reads: self.logical_reads + other.logical_reads,
        }
    }
}

/// Locking counters accumulated by a [`BufferPool`] — the machine-
/// independent signal of how much locking the read path avoids (wall-clock
/// scaling needs cores; these counters are exact on any box).
///
/// Successful optimistic reads and shard-mutex acquisitions are mutually
/// exclusive events: a page touch is either an `optimistic_hit` (zero
/// locks) or part of a `lock_acquisitions` (one shard mutex). Failed
/// optimistic attempts are classified as `optimistic_retries` (version
/// conflict — a writer raced the copy) or `locked_fallbacks` (the page was
/// not published, e.g. not resident) and are always followed by a locked
/// access that does the I/O accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Successful lock-free page reads (no mutex touched).
    pub optimistic_hits: u64,
    /// Optimistic attempts aborted by a concurrent version change.
    pub optimistic_retries: u64,
    /// Optimistic attempts that found the page unpublished and deferred
    /// to the locked path.
    pub locked_fallbacks: u64,
    /// Shard-mutex acquisitions by the data path ([`BufferPool::read`],
    /// [`BufferPool::write`], [`BufferPool::allocate`]); administrative
    /// sweeps (`stats`, `flush_all`, `clear`, …) are not counted.
    pub lock_acquisitions: u64,
    /// Page-latch grants ([`BufferPool::latch`] / [`BufferPool::try_latch`]
    /// successes) — the OLC write path's per-update footprint. A
    /// non-structural latched upsert grants exactly one (the leaf).
    pub latch_acquisitions: u64,
    /// Latch requests that found the slot held (blocking waits plus failed
    /// tries) — how often writers actually collided on a page.
    pub latch_waits: u64,
}

impl LockStats {
    /// Element-wise sum of two counter sets (shard aggregation).
    pub fn merged(&self, other: &LockStats) -> LockStats {
        LockStats {
            optimistic_hits: self.optimistic_hits + other.optimistic_hits,
            optimistic_retries: self.optimistic_retries + other.optimistic_retries,
            locked_fallbacks: self.locked_fallbacks + other.locked_fallbacks,
            lock_acquisitions: self.lock_acquisitions + other.lock_acquisitions,
            latch_acquisitions: self.latch_acquisitions + other.latch_acquisitions,
            latch_waits: self.latch_waits + other.latch_waits,
        }
    }

    /// All optimistic attempts, successful or not.
    pub fn optimistic_attempts(&self) -> u64 {
        self.optimistic_hits + self.optimistic_retries + self.locked_fallbacks
    }

    /// Fraction of optimistic attempts that succeeded (`1.0` when none
    /// were made, mirroring [`IoStats::hit_ratio`]'s convention).
    pub fn optimistic_hit_rate(&self) -> f64 {
        let attempts = self.optimistic_attempts();
        if attempts == 0 {
            return 1.0;
        }
        self.optimistic_hits as f64 / attempts as f64
    }
}

/// The pool's fault ledger: everything the retry / read-repair /
/// quarantine machinery did, deterministic for a fixed fault schedule.
///
/// These counters sit *beside* [`IoStats`], not inside it: a fetch that
/// needed three transient retries and a repair still lands on the I/O
/// ledger as exactly one physical read — identical to the fault-free twin
/// of the same run — while the extra device traffic is visible here (and
/// on the [`DiskSim`]'s own device-level counters).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Transient read errors absorbed by an immediate bounded retry.
    pub transient_retries: u64,
    /// Deterministic backoff units accrued across retries (`2^attempt`
    /// per retry — a simulated clock, no wall time is spent).
    pub backoff_ticks: u64,
    /// Fetches that exhausted the retry budget and surfaced the
    /// transient error.
    pub transient_exhausted: u64,
    /// Physical reads whose content failed seal verification.
    pub checksum_mismatches: u64,
    /// Physical reads that hit a permanently unreadable sector.
    pub bad_sector_reads: u64,
    /// Read-repairs attempted (a WAL post-image was available).
    pub repairs_attempted: u64,
    /// Read-repairs whose rewrite re-verified against the image's seal.
    pub repairs_succeeded: u64,
    /// Device reads issued by the repair loop's re-verification.
    pub repair_reads: u64,
    /// Device writes issued by the repair loop's rewrite.
    pub repair_writes: u64,
    /// Pages quarantined after repair failed twice (served from a pinned
    /// frame backed by the WAL image from then on).
    pub quarantines: u64,
    /// Faults returned to the caller as typed errors (non-durable pool,
    /// unrepairable page, or retry budget exhausted).
    pub surfaced_errors: u64,
}

/// Atomic backing store of [`FaultStats`] (relaxed counters — exact once
/// accesses quiesce, like every other pool ledger).
#[derive(Default)]
struct FaultCounters {
    transient_retries: AtomicU64,
    backoff_ticks: AtomicU64,
    transient_exhausted: AtomicU64,
    checksum_mismatches: AtomicU64,
    bad_sector_reads: AtomicU64,
    repairs_attempted: AtomicU64,
    repairs_succeeded: AtomicU64,
    repair_reads: AtomicU64,
    repair_writes: AtomicU64,
    quarantines: AtomicU64,
    surfaced_errors: AtomicU64,
}

impl FaultCounters {
    fn snapshot(&self) -> FaultStats {
        FaultStats {
            transient_retries: self.transient_retries.load(Ordering::Relaxed),
            backoff_ticks: self.backoff_ticks.load(Ordering::Relaxed),
            transient_exhausted: self.transient_exhausted.load(Ordering::Relaxed),
            checksum_mismatches: self.checksum_mismatches.load(Ordering::Relaxed),
            bad_sector_reads: self.bad_sector_reads.load(Ordering::Relaxed),
            repairs_attempted: self.repairs_attempted.load(Ordering::Relaxed),
            repairs_succeeded: self.repairs_succeeded.load(Ordering::Relaxed),
            repair_reads: self.repair_reads.load(Ordering::Relaxed),
            repair_writes: self.repair_writes.load(Ordering::Relaxed),
            quarantines: self.quarantines.load(Ordering::Relaxed),
            surfaced_errors: self.surfaced_errors.load(Ordering::Relaxed),
        }
    }
}

/// Outcome of a versioned lock-free read attempt
/// ([`BufferPool::read_versioned`]).
pub enum OptimisticRead<R> {
    /// The closure ran on a consistent snapshot published at this (even)
    /// version; re-check it later with [`BufferPool::read_version`] to
    /// detect intervening writes (optimistic lock coupling).
    Hit(R, u64),
    /// The page is not published lock-free (not resident, displaced from
    /// its mirror slot by a colliding page, or optimistic reads are
    /// disabled on this pool). Fall back to [`BufferPool::read`].
    Unpublished,
    /// A concurrent writer raced the copy; retry or fall back.
    Conflict,
}

/// A cached copy of one page plus the mirror version it was published
/// at — the unit a descent-path cursor caches and revalidates
/// ([`BufferPool::read_snapshot`] / [`BufferPool::snapshot_valid`]).
///
/// Fused multi-interval scans keep one snapshot per B+-tree level so that
/// re-routing to a nearby key can reuse the upper-level pages already in
/// hand: as long as [`BufferPool::snapshot_valid`] holds, the cached copy
/// is bit-identical to the published page and consulting it costs no pool
/// traffic at all (no lock, no logical read). A snapshot taken through
/// the locked fallback carries no version and is never revalidatable —
/// it is good for the single use it was taken for.
pub struct PageSnapshot {
    pid: PageId,
    /// Publication version the copy was validated at; `None` when the
    /// copy came from the locked path (cannot be revalidated later).
    version: Option<u64>,
    page: Page,
}

impl PageSnapshot {
    /// An empty snapshot (refers to no page until filled by
    /// [`BufferPool::read_snapshot`]).
    pub fn new() -> Self {
        PageSnapshot { pid: PageId::INVALID, version: None, page: Page::new() }
    }

    /// The page this snapshot copied (`PageId::INVALID` before first use).
    pub fn pid(&self) -> PageId {
        self.pid
    }

    /// The cached page image. Only meaningful after a successful
    /// [`BufferPool::read_snapshot`], and only trustworthy for *reuse*
    /// while [`BufferPool::snapshot_valid`] holds.
    pub fn page(&self) -> &Page {
        &self.page
    }

    /// Whether the copy was taken lock-free with a publication version
    /// (the precondition for ever passing [`BufferPool::snapshot_valid`]).
    pub fn is_versioned(&self) -> bool {
        self.version.is_some()
    }
}

impl Default for PageSnapshot {
    fn default() -> Self {
        PageSnapshot::new()
    }
}

/// One lock shard: the mutex-protected half plus the lock-free half.
struct ShardState {
    /// Frame table and locked-path I/O counters.
    shard: Mutex<PoolShard>,
    /// The shard's LRU clock. Atomic (not inside the mutex) because
    /// optimistic hits advance it without locking; every touch — locked
    /// or optimistic — gets a distinct tick, which keeps eviction
    /// deterministic.
    tick: AtomicU64,
    /// The versioned page mirror optimistic reads copy from.
    mirror: Mirror,
    /// Logical reads performed by successful optimistic reads (summed
    /// into [`IoStats::logical_reads`] by `stats()`).
    opt_logical: AtomicU64,
    /// [`LockStats::optimistic_hits`] slice.
    opt_hits: AtomicU64,
    /// [`LockStats::optimistic_retries`] slice.
    opt_conflicts: AtomicU64,
    /// [`LockStats::locked_fallbacks`] slice.
    opt_fallbacks: AtomicU64,
    /// [`LockStats::lock_acquisitions`] slice.
    lock_acqs: AtomicU64,
}

impl ShardState {
    fn new(capacity: usize, shard_bits: u32) -> Self {
        ShardState {
            shard: Mutex::new(PoolShard::new(capacity)),
            tick: AtomicU64::new(0),
            mirror: Mirror::new(capacity, shard_bits),
            opt_logical: AtomicU64::new(0),
            opt_hits: AtomicU64::new(0),
            opt_conflicts: AtomicU64::new(0),
            opt_fallbacks: AtomicU64::new(0),
            lock_acqs: AtomicU64::new(0),
        }
    }

    fn lock_stats(&self) -> LockStats {
        LockStats {
            optimistic_hits: self.opt_hits.load(Ordering::Relaxed),
            optimistic_retries: self.opt_conflicts.load(Ordering::Relaxed),
            locked_fallbacks: self.opt_fallbacks.load(Ordering::Relaxed),
            lock_acquisitions: self.lock_acqs.load(Ordering::Relaxed),
            // Latches are pool-global (the table is shared by all shards);
            // `BufferPool::lock_stats` folds them in after the shard sum.
            latch_acquisitions: 0,
            latch_waits: 0,
        }
    }
}

thread_local! {
    /// Reusable per-thread scratch page for optimistic copies, so the
    /// lock-free hot path allocates nothing.
    static SCRATCH: RefCell<Page> = RefCell::new(Page::new());
}

/// The shared buffer manager: a sharded LRU page cache over a
/// [`DiskSim`]. See the [module docs](self) for the sharding, locking,
/// versioned-read, and determinism contract.
pub struct BufferPool {
    /// The lock shards; length is always a power of two.
    shards: Box<[ShardState]>,
    /// `shards.len() - 1`, used to mask a page id onto its shard.
    shard_mask: usize,
    /// Total frame budget across all shards.
    total_capacity: usize,
    /// Whether the lock-free read path is active (it is by default;
    /// [`BufferPool::optimistic`] opts out for A/B measurements).
    optimistic_reads: bool,
    /// The simulated disk, behind its own lock **below** every shard lock.
    disk: Mutex<DiskSim>,
    /// Whether the write-ahead-log protocol is active. An atomic flag so
    /// the default (non-durable) hot path pays one relaxed load and never
    /// touches the `wal` mutex — the frozen I/O ledgers are bit-identical
    /// with durability off.
    durable: AtomicBool,
    /// The write-ahead log, present once durability was ever enabled.
    /// Lock order: a shard lock may be held when taking this, and this may
    /// be held when taking nothing — the log never touches shards or the
    /// data disk (it owns its own disk region).
    wal: Mutex<Option<Wal>>,
    /// The per-page write-latch table (optimistic lock coupling's writer
    /// half). Pool-global: latch protocols span pool shards, and the
    /// table takes no part in I/O accounting.
    latches: LatchTable,
    /// Crash-point injector counting every simulated disk-page write in
    /// durable mode (shared with the test harness via
    /// [`BufferPool::crash_injector`]).
    injector: Arc<CrashInjector>,
    /// Ambient [`CrashPoint`] override for injection labels: 0 = none,
    /// 1 = checkpoint, 2 = chain spill. Plain atomic (not thread-local)
    /// because the durable write path is specified single-threaded — see
    /// [`BufferPool::set_durable`].
    crash_scope: AtomicU8,
    /// The retry / read-repair / quarantine ledger ([`FaultStats`]).
    faults: FaultCounters,
    /// The virtual clock: one tick per logical page access, plus
    /// whatever the disk's [`LatencyInjector`] arms on physical reads.
    /// Shared with the disk (and, via [`BufferPool::clock`], with the
    /// serving layer's deadlines).
    clock: TickClock,
}

/// The default shard count: the next power of two at or above the
/// machine's available parallelism (1 if parallelism cannot be queried).
pub fn default_shard_count() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get()).next_power_of_two()
}

impl BufferPool {
    /// A single-shard pool holding at most `capacity` pages (the paper
    /// uses 50).
    ///
    /// One shard means one LRU domain over the whole budget — exactly the
    /// original single-mutex pool, byte-identical counters included. This
    /// is the right configuration for reproducing the paper's I/O numbers
    /// and is what every frozen benchmark configuration uses; use
    /// [`BufferPool::sharded`] when serving concurrent readers.
    pub fn new(capacity: usize) -> Self {
        BufferPool::with_shards(capacity, 1)
    }

    /// A pool sharded for concurrent access: [`default_shard_count`] lock
    /// shards (clamped so each owns at least one of the `capacity`
    /// frames).
    pub fn sharded(capacity: usize) -> Self {
        BufferPool::with_shards(capacity, default_shard_count())
    }

    /// A pool with an explicit shard count.
    ///
    /// `shards` is rounded up to a power of two, then halved until every
    /// shard owns at least one frame. The `capacity` budget is split per
    /// the remainder rule: shard `i` of `n` gets `capacity / n + 1` frames
    /// if `i < capacity % n`, else `capacity / n`.
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::with_shards(10, 4);
    /// assert_eq!(pool.num_shards(), 4);
    /// assert_eq!(pool.shard_capacities(), vec![3, 3, 2, 2]);
    ///
    /// // Clamped: 8 shards cannot each own a frame of a 2-frame budget.
    /// assert_eq!(BufferPool::with_shards(2, 8).num_shards(), 2);
    /// ```
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        assert!(shards >= 1, "buffer pool needs at least one shard");
        let mut n = shards.next_power_of_two();
        while n > capacity {
            n >>= 1;
        }
        let shard_bits = n.trailing_zeros();
        let (base, rem) = (capacity / n, capacity % n);
        let shards: Box<[ShardState]> =
            (0..n).map(|i| ShardState::new(base + usize::from(i < rem), shard_bits)).collect();
        let clock = TickClock::new();
        let mut disk = DiskSim::new();
        disk.set_clock(clock.clone());
        BufferPool {
            shards,
            shard_mask: n - 1,
            total_capacity: capacity,
            optimistic_reads: true,
            disk: Mutex::new(disk),
            durable: AtomicBool::new(false),
            wal: Mutex::new(None),
            latches: LatchTable::new(),
            injector: Arc::new(CrashInjector::new()),
            crash_scope: AtomicU8::new(0),
            faults: FaultCounters::default(),
            clock,
        }
    }

    /// Toggle the lock-free read path (builder-style, before the pool is
    /// shared). With optimistic reads off, [`BufferPool::read_versioned`]
    /// always reports [`OptimisticRead::Unpublished`] without counting any
    /// optimistic traffic, so every read takes the locked path — the
    /// configuration the `BENCH_optreads.json` experiment compares
    /// against. I/O counters are identical either way; only [`LockStats`]
    /// differs.
    pub fn optimistic(mut self, enabled: bool) -> Self {
        self.optimistic_reads = enabled;
        self
    }

    /// Whether the lock-free read path is active on this pool.
    pub fn optimistic_reads_enabled(&self) -> bool {
        self.optimistic_reads
    }

    /// The shard a page id maps to: the id's low bits. Pages are
    /// allocated sequentially, so consecutive pages (e.g. neighboring
    /// B+-tree leaves) round-robin across shards.
    pub fn shard_of(&self, pid: PageId) -> usize {
        pid.0 as usize & self.shard_mask
    }

    /// Allocate a fresh zeroed page; it becomes resident and dirty so the
    /// first write-back is counted like any other.
    pub fn allocate(&self) -> PageId {
        // Disk lock first for the id, *released* before the shard lock —
        // the ordering shard → disk must never be inverted.
        let pid = self.disk.lock().allocate();
        if self.durable.load(Ordering::Relaxed) {
            // Log the allocation (no other lock held). A fresh page has no
            // committed content to roll back, so it never needs a
            // pre-image this checkpoint interval: an uncommitted alloc is
            // unreferenced garbage, a committed one is covered by redo.
            let mut wal = self.wal.lock();
            if let Some(wal) = wal.as_mut() {
                wal.append(&WalRecord::Alloc { pid });
                wal.mark_preimaged(pid);
            }
        }
        let state = &self.shards[self.shard_of(pid)];
        state.lock_acqs.fetch_add(1, Ordering::Relaxed);
        let s = &mut *state.shard.lock();
        if s.table.is_full() {
            self.evict_one(state, s);
        }
        let tick = state.tick.fetch_add(1, Ordering::Relaxed) + 1;
        s.table.insert(
            pid,
            Frame { page: Page::new(), dirty: true, last_used: tick, lsn: 0, pinned: false },
        );
        if self.optimistic_reads {
            Self::publish_locked(state, s, pid, true, tick);
        }
        pid
    }

    /// Read access to a page through the buffer, taking the owning
    /// shard's lock (a hit touches nothing else). This is the universal
    /// fallback of the lock-free [`BufferPool::try_read_optimistic`] and
    /// the only read path that can fault a page in from disk.
    ///
    /// Panics if the fetch hits a media fault the retry/repair machinery
    /// cannot resolve — use [`BufferPool::try_read`] where a typed error
    /// should propagate instead. On fault-free media the two are
    /// identical.
    pub fn read<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> R {
        self.try_read(pid, f).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BufferPool::read`]: a transient device error is retried
    /// (bounded), a detected corruption is read-repaired from the WAL in
    /// durable mode, and anything unresolvable comes back as a typed
    /// [`IoFault`] instead of a panic.
    pub fn try_read<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> Result<R, IoFault> {
        self.try_with_page(pid, false, false, |page| f(page))
    }

    /// Write access to a page through the buffer; marks the frame dirty
    /// and republishes the page's mirror image under a bumped version, so
    /// in-flight optimistic readers of the old image fail validation.
    ///
    /// Panics on an unresolvable media fault (see [`BufferPool::read`]);
    /// [`BufferPool::try_write`] is the fallible form.
    pub fn write<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        self.try_write(pid, f).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BufferPool::write`] (the fault can only arise while
    /// faulting the page *in* — the write-back itself is asynchronous).
    pub fn try_write<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R, IoFault> {
        self.try_with_page(pid, true, false, f)
    }

    /// [`BufferPool::write`] for message-chain sidecar pages: identical in
    /// every way except that in durable mode the logged post-image is a
    /// [`WalRecord::ChainWrite`], so the log distinguishes buffered-write
    /// traffic and recovery statistics stay meaningful.
    pub fn write_chain<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        self.try_write_chain(pid, f).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BufferPool::write_chain`].
    pub fn try_write_chain<R>(
        &self,
        pid: PageId,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, IoFault> {
        self.try_with_page(pid, true, true, f)
    }

    /// Lock-free versioned read: run `f` on a consistent copy of `pid`
    /// without acquiring any lock, returning the copy's publication
    /// version for later revalidation ([`BufferPool::read_version`]) —
    /// the primitive optimistic lock coupling builds on.
    ///
    /// On [`OptimisticRead::Hit`] the touch is accounted exactly like a
    /// locked buffer hit (one logical read, LRU recency advanced); failed
    /// attempts count nothing toward [`IoStats`] so the locked fallback's
    /// accounting keeps the ledger identical to a locked-only execution.
    pub fn read_versioned<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> OptimisticRead<R> {
        if !self.optimistic_reads {
            return OptimisticRead::Unpublished;
        }
        let state = &self.shards[self.shard_of(pid)];
        let outcome = SCRATCH.with(|cell| match cell.try_borrow_mut() {
            Ok(mut scratch) => Self::attempt(state, pid, &mut scratch, f),
            // `f` of an outer optimistic read is itself reading
            // optimistically; give the nested copy its own page instead
            // of aliasing the scratch buffer.
            Err(_) => Self::attempt(state, pid, &mut Page::new(), f),
        });
        match outcome {
            OptimisticRead::Hit(..) => {
                let tick = state.tick.fetch_add(1, Ordering::Relaxed) + 1;
                state.mirror.touch(pid, tick);
                state.opt_logical.fetch_add(1, Ordering::Relaxed);
                state.opt_hits.fetch_add(1, Ordering::Relaxed);
                self.clock.advance(1);
            }
            OptimisticRead::Unpublished => {
                state.opt_fallbacks.fetch_add(1, Ordering::Relaxed);
            }
            OptimisticRead::Conflict => {
                state.opt_conflicts.fetch_add(1, Ordering::Relaxed);
            }
        }
        outcome
    }

    fn attempt<R>(
        state: &ShardState,
        pid: PageId,
        scratch: &mut Page,
        f: impl FnOnce(&Page) -> R,
    ) -> OptimisticRead<R> {
        match state.mirror.try_read(pid, scratch) {
            TryRead::Hit(version) => OptimisticRead::Hit(f(scratch), version),
            TryRead::Unpublished => OptimisticRead::Unpublished,
            TryRead::Conflict => OptimisticRead::Conflict,
        }
    }

    /// Fill `snap` with a consistent copy of `pid` — the read primitive of
    /// descent-path cursors. Tries the lock-free versioned path first
    /// (retrying a transient conflict once) and falls back to the locked
    /// read; either way the touch lands on the I/O ledger exactly like any
    /// other page read. Returns `true` when the copy carries a publication
    /// version, i.e. it can later pass [`BufferPool::snapshot_valid`] and
    /// be *reused* without further pool traffic.
    ///
    /// ```
    /// use peb_storage::{BufferPool, PageSnapshot};
    ///
    /// let pool = BufferPool::new(4);
    /// let pid = pool.allocate();
    /// pool.write(pid, |p| p.put_u64(0, 7));
    ///
    /// let mut snap = PageSnapshot::new();
    /// assert!(pool.read_snapshot(pid, &mut snap), "resident page is published");
    /// assert_eq!(snap.page().get_u64(0), 7);
    /// assert!(pool.snapshot_valid(&snap), "nothing changed: reuse is free");
    /// pool.write(pid, |p| p.put_u64(0, 8));
    /// assert!(!pool.snapshot_valid(&snap), "a write invalidates the cached copy");
    /// ```
    pub fn read_snapshot(&self, pid: PageId, snap: &mut PageSnapshot) -> bool {
        self.try_read_snapshot(pid, snap).unwrap_or_else(|e| panic!("unresolved I/O fault: {e}"))
    }

    /// Fallible [`BufferPool::read_snapshot`]: the lock-free attempt never
    /// touches the device (the mirror only ever publishes verified,
    /// frame-resident pages), so a fault can only arise in the locked
    /// fallback's fetch — and surfaces typed here instead of panicking.
    pub fn try_read_snapshot(&self, pid: PageId, snap: &mut PageSnapshot) -> Result<bool, IoFault> {
        snap.pid = pid;
        snap.version = None;
        if self.optimistic_reads {
            let state = &self.shards[self.shard_of(pid)];
            // A conflict needs a writer mid-publication; one retry rides
            // out the transient, then the locked path settles it.
            for _ in 0..2 {
                match state.mirror.try_read(pid, &mut snap.page) {
                    TryRead::Hit(version) => {
                        let tick = state.tick.fetch_add(1, Ordering::Relaxed) + 1;
                        state.mirror.touch(pid, tick);
                        state.opt_logical.fetch_add(1, Ordering::Relaxed);
                        state.opt_hits.fetch_add(1, Ordering::Relaxed);
                        self.clock.advance(1);
                        snap.version = Some(version);
                        return Ok(true);
                    }
                    TryRead::Unpublished => {
                        state.opt_fallbacks.fetch_add(1, Ordering::Relaxed);
                        break;
                    }
                    TryRead::Conflict => {
                        state.opt_conflicts.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        let copy = &mut snap.page;
        self.try_read(pid, |p| copy.clone_from(p))?;
        Ok(false)
    }

    /// Whether `snap`'s cached copy is still current: the page is still
    /// published at the very version the copy was taken at. A locked
    /// (version-less) snapshot never validates, nor does a page that was
    /// evicted, displaced from its mirror slot, or rewritten since — the
    /// cursor must then re-read through the pool.
    pub fn snapshot_valid(&self, snap: &PageSnapshot) -> bool {
        match snap.version {
            Some(v) => self.read_version(snap.pid) == Some(v),
            None => false,
        }
    }

    /// Lock-free read without version plumbing: `Some(r)` when a
    /// consistent snapshot was read (validated before use), `None` when
    /// the caller must retry or fall back to the locked
    /// [`BufferPool::read`].
    pub fn try_read_optimistic<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> Option<R> {
        match self.read_versioned(pid, f) {
            OptimisticRead::Hit(r, _) => Some(r),
            OptimisticRead::Unpublished | OptimisticRead::Conflict => None,
        }
    }

    /// The stable version `pid` is currently published at, or `None` if
    /// it is unpublished, mid-write, or optimistic reads are disabled.
    /// Lock-free; used to revalidate a parent page after following a
    /// child pointer read from its snapshot.
    pub fn read_version(&self, pid: PageId) -> Option<u64> {
        if !self.optimistic_reads {
            return None;
        }
        self.shards[self.shard_of(pid)].mirror.version_of(pid)
    }

    /// Exclusively latch `pid` for a structural write, **blocking** if the
    /// latch is held. Only legal while holding *no* other page latch (see
    /// `pool::latch`): writers block on their first latch — the leaf —
    /// and must use [`BufferPool::try_latch`] for every further one.
    ///
    /// A latch serializes *writers* of the page (and of any page hashing
    /// to the same slot); readers never latch — they validate versions.
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::new(4);
    /// let pid = pool.allocate();
    /// let held = pool.latch(pid);
    /// assert!(pool.try_latch(pid).is_none(), "latches are exclusive");
    /// drop(held);
    /// assert!(pool.try_latch(pid).is_some());
    /// ```
    pub fn latch(&self, pid: PageId) -> PageLatch<'_> {
        self.latches.lock(pid)
    }

    /// Try to latch `pid` without blocking. `None` means a conflicting
    /// hold exists — the caller must release everything and restart its
    /// operation (the no-hold-and-wait rule that keeps latching
    /// deadlock-free regardless of hash collisions).
    pub fn try_latch(&self, pid: PageId) -> Option<PageLatch<'_>> {
        self.latches.try_lock(pid)
    }

    /// The latch-table slot `pid` hashes to. Callers holding several
    /// latches compare slots before acquiring another: a second acquire of
    /// an already-held slot would self-deadlock, and is unnecessary — the
    /// held slot already excludes every writer of every page mapping to it.
    pub fn latch_slot(&self, pid: PageId) -> usize {
        LatchTable::slot_of(pid)
    }

    /// Fetch one page from the device, absorbing what the fault layer can:
    /// transient errors are retried up to [`TRANSIENT_RETRIES`] times with
    /// a deterministic exponential backoff ledger (simulated ticks, no
    /// wall time), and detected corruption or a bad sector goes through
    /// [`BufferPool::repair_or_surface`]. Returns the verified page plus
    /// whether it must be pinned resident (quarantined sector).
    ///
    /// Called with the owning shard lock held; takes the wal and disk
    /// locks below it, never both at once with another shard lock — the
    /// lock hierarchy is unchanged.
    fn fetch_verified(&self, pid: PageId) -> Result<(Page, bool), IoFault> {
        let mut attempt = 0u32;
        loop {
            // Bind before matching: a guard in the scrutinee would live
            // across the arms, and the repair arm re-locks the disk.
            let result = self.disk.lock().read(pid);
            match result {
                Ok(page) => return Ok((page, false)),
                Err(IoFault::Transient { .. }) if attempt < TRANSIENT_RETRIES => {
                    attempt += 1;
                    self.faults.transient_retries.fetch_add(1, Ordering::Relaxed);
                    self.faults.backoff_ticks.fetch_add(1 << attempt, Ordering::Relaxed);
                }
                Err(fault @ IoFault::Transient { .. }) => {
                    self.faults.transient_exhausted.fetch_add(1, Ordering::Relaxed);
                    self.faults.surfaced_errors.fetch_add(1, Ordering::Relaxed);
                    return Err(fault);
                }
                Err(fault) => return self.repair_or_surface(pid, fault),
            }
        }
    }

    /// Handle a non-transient fetch failure: in durable mode, read-repair
    /// the page from the WAL's newest post-image (rewrite, re-read,
    /// re-verify, twice); if both rounds fail, quarantine the sector and
    /// serve the WAL image from a pinned frame. Outside durable mode —
    /// or when the page was never logged — the fault surfaces typed.
    ///
    /// Repair traffic deliberately bypasses the crash injector and the
    /// pool's [`IoStats`]: a repair write is an idempotent replay of an
    /// already-logged image (a crash mid-repair just re-repairs on the
    /// next read), and keeping it off the pool ledger is what lets a
    /// repaired run's I/O counters stay identical to its fault-free
    /// twin's. The traffic is visible on [`FaultStats`] and the device's
    /// own counters instead.
    fn repair_or_surface(&self, pid: PageId, fault: IoFault) -> Result<(Page, bool), IoFault> {
        match fault {
            IoFault::Corrupt { .. } => {
                self.faults.checksum_mismatches.fetch_add(1, Ordering::Relaxed);
            }
            IoFault::BadSector { .. } => {
                self.faults.bad_sector_reads.fetch_add(1, Ordering::Relaxed);
            }
            IoFault::Transient { .. } => unreachable!("transients are retried, not repaired"),
        }
        if !self.durable.load(Ordering::Relaxed) {
            self.faults.surfaced_errors.fetch_add(1, Ordering::Relaxed);
            return Err(fault);
        }
        let image = self.wal.lock().as_ref().and_then(|w| w.latest_image(pid));
        let Some(image) = image else {
            // Durable, but this page was never logged (enrolled into
            // durability and untouched since): nothing to repair from.
            self.faults.surfaced_errors.fetch_add(1, Ordering::Relaxed);
            return Err(fault);
        };
        self.faults.repairs_attempted.fetch_add(1, Ordering::Relaxed);
        let seal = image.seal();
        for _ in 0..2 {
            let mut disk = self.disk.lock();
            self.faults.repair_writes.fetch_add(1, Ordering::Relaxed);
            disk.write(pid, &image);
            self.faults.repair_reads.fetch_add(1, Ordering::Relaxed);
            if let Ok(back) = disk.read(pid) {
                if back.verify(seal) {
                    self.faults.repairs_succeeded.fetch_add(1, Ordering::Relaxed);
                    return Ok((back, false));
                }
            }
        }
        // The sector will not hold the image (grown defect): quarantine.
        // The WAL image is exact, so serving it is correct — it just must
        // never be evicted to (or re-fetched from) the bad sector again.
        self.faults.quarantines.fetch_add(1, Ordering::Relaxed);
        Ok((image, true))
    }

    /// Fetch `pid` into its shard (counting a hit or a miss), bump LRU
    /// recency, and run `f` on the frame under the shard lock. In durable
    /// mode a dirtying access logs the page's pre-image (first write since
    /// the last checkpoint only) before `f` and its full post-image after,
    /// stamping the frame — and the mirror — with the record's LSN.
    ///
    /// A miss goes through [`BufferPool::fetch_verified`]; an
    /// unresolvable media fault aborts before any frame state changes
    /// (only the logical-read count and a possible eviction happened) and
    /// surfaces as `Err`.
    fn try_with_page<R>(
        &self,
        pid: PageId,
        mark_dirty: bool,
        chain: bool,
        f: impl FnOnce(&mut Page) -> R,
    ) -> Result<R, IoFault> {
        let state = &self.shards[self.shard_of(pid)];
        state.lock_acqs.fetch_add(1, Ordering::Relaxed);
        let s = &mut *state.shard.lock();
        let tick = state.tick.fetch_add(1, Ordering::Relaxed) + 1;
        s.stats.logical_reads += 1;
        self.clock.advance(1);
        let mut content_changed = mark_dirty;
        if !s.table.contains(pid) {
            if s.table.is_full() {
                self.evict_one(state, s);
            }
            let (page, pinned) = self.fetch_verified(pid)?;
            // One physical read on the pool ledger regardless of how many
            // device attempts the fault layer needed — see [`FaultStats`].
            s.stats.physical_reads += 1;
            s.table.insert(pid, Frame { page, dirty: false, last_used: 0, lsn: 0, pinned });
            content_changed = true;
        }
        let frame = s
            .table
            .get_mut(pid)
            .expect("invariant: fetch_verified inserted the frame under this shard lock");
        frame.last_used = tick;
        if mark_dirty {
            frame.dirty = true;
        }
        let durable = mark_dirty && self.durable.load(Ordering::Relaxed);
        let (r, lsn) = if durable {
            // Shard lock is held; the wal lock nests under it (see the
            // field docs). Log-before-page: both images are in the log
            // stream before the frame can ever be flushed at this LSN.
            let mut wal = self.wal.lock();
            // Invariant, not fault-reachable: `set_durable(true)` creates
            // the wal before the flag is ever observable as set.
            let wal = wal.as_mut().expect("durable pool always has a wal");
            if !wal.is_preimaged(pid) {
                wal.append(&WalRecord::PreImage { pid, image: Box::new(frame.page.clone()) });
                wal.mark_preimaged(pid);
            }
            let r = f(&mut frame.page);
            let image = Box::new(frame.page.clone());
            let rec = if chain {
                WalRecord::ChainWrite { pid, image }
            } else {
                WalRecord::PageWrite { pid, image }
            };
            let lsn = wal.append(&rec);
            frame.lsn = lsn;
            (r, lsn)
        } else {
            (f(&mut frame.page), 0)
        };
        if self.optimistic_reads {
            Self::publish_locked(state, s, pid, content_changed, tick);
            if durable {
                state.mirror.set_lsn(pid, lsn);
            }
        }
        Ok(r)
    }

    /// Publish `pid`'s current frame contents to the shard mirror (caller
    /// holds the shard lock). `force` republishes even when the slot
    /// already holds `pid` (required after any content change); otherwise
    /// an already-published page is left at its current version so
    /// concurrent optimistic readers are not needlessly invalidated. When
    /// the slot was occupied by a different page, that page's optimistic
    /// recency is folded back into its frame so eviction keeps seeing it.
    fn publish_locked(state: &ShardState, s: &mut PoolShard, pid: PageId, force: bool, tick: u64) {
        if !force && state.mirror.holds(pid) {
            return;
        }
        peb_common::sched::probe(peb_common::sched::Site::Publish);
        let displaced = {
            // Invariant, not fault-reachable: every caller publishes a pid
            // it just inserted or touched under this same shard lock.
            let page = &s.table.get(pid).expect("published page resident").page;
            state.mirror.publish(pid, page, tick)
        };
        if let Some((old_pid, recency)) = displaced {
            if let Some(frame) = s.table.get_mut(old_pid) {
                frame.last_used = frame.last_used.max(recency);
            }
        }
    }

    /// Evict the shard's LRU frame, writing it back (counted) if dirty.
    /// Caller holds the shard lock; the wal and disk locks are taken
    /// below it (log-before-page: the log is forced durable up to the
    /// frame's LSN before the data write). Victim selection folds in
    /// optimistic-touch recency from the mirror so lock-free hits protect
    /// hot pages exactly like locked hits.
    fn evict_one(&self, state: &ShardState, s: &mut PoolShard) {
        let mirror = &state.mirror;
        let Some((vpid, frame)) =
            s.table.take_victim_by(|pid, f| f.last_used.max(mirror.recency_of(pid).unwrap_or(0)))
        else {
            // Reachable under faults: every resident frame is pinned
            // (quarantined), so there is nothing safe to evict — the
            // caller's insert transiently exceeds the shard budget
            // instead of dropping a page whose disk sector is bad.
            return;
        };
        mirror.invalidate(vpid);
        if frame.dirty {
            self.wal_before_data_write(frame.lsn);
            self.data_write_hit();
            s.stats.physical_writes += 1;
            self.disk.lock().write(vpid, &frame.page);
        }
    }

    /// Write every dirty frame back to disk (counted), keeping residency;
    /// returns how many pages were flushed. Page contents do not change,
    /// so mirror versions are left alone and concurrent optimistic readers
    /// stay valid. Frames flush in ascending page-id order per shard, so
    /// the write sequence is deterministic. In durable mode each data
    /// write is preceded by forcing the log durable up to the frame's LSN.
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::new(4);
    /// let a = pool.allocate();
    /// let b = pool.allocate();
    /// pool.write(a, |p| p.put_u64(0, 1));
    /// assert_eq!(pool.dirty_page_count(), 2, "fresh allocations start dirty");
    /// assert_eq!(pool.flush_all(), 2);
    /// assert_eq!(pool.dirty_page_count(), 0);
    /// assert_eq!(pool.flush_all(), 0, "a clean pool flushes nothing");
    /// pool.write(b, |p| p.put_u64(0, 2));
    /// assert_eq!((pool.dirty_page_count(), pool.flush_all()), (1, 1));
    /// ```
    pub fn flush_all(&self) -> usize {
        let mut flushed = 0;
        for state in self.shards.iter() {
            let s = &mut *state.shard.lock();
            for pid in s.table.sorted_pids() {
                let (dirty, lsn, pinned) = {
                    // Invariant, not fault-reachable: sorted_pids listed
                    // this pid under the same shard lock we still hold.
                    let f = s.table.get(pid).expect("listed frame resident");
                    (f.dirty, f.lsn, f.pinned)
                };
                // A pinned frame's sector is quarantined: writing it back
                // would be lost (and in durable mode its content is fully
                // covered by WAL post-images, which is also what read-
                // repair will serve after any restart).
                if !dirty || pinned {
                    continue;
                }
                self.wal_before_data_write(lsn);
                self.data_write_hit();
                s.stats.physical_writes += 1;
                let frame = s.table.get_mut(pid).expect("listed frame resident");
                self.disk.lock().write(pid, &frame.page);
                frame.dirty = false;
                flushed += 1;
            }
        }
        flushed
    }

    /// Number of resident frames whose content has not reached the data
    /// disk yet, across all shards — the work [`BufferPool::flush_all`]
    /// (and therefore a checkpoint) would have to do right now.
    pub fn dirty_page_count(&self) -> usize {
        self.shards.iter().map(|st| st.shard.lock().table.dirty_count()).sum()
    }

    /// Drop every unpinned frame (writing back dirty ones, in ascending
    /// page-id order). Used by experiments to cold-start the buffer
    /// between measurement rounds. Every mirror slot is unpublished and
    /// its version forced to a fresh even value, so no slot can stay
    /// poisoned for future optimistic readers. Quarantined (pinned)
    /// frames stay resident: their disk sector holds bad bytes, so the
    /// in-memory copy is the page.
    pub fn clear(&self) {
        for state in self.shards.iter() {
            let s = &mut *state.shard.lock();
            state.mirror.reset();
            let mut frames = s.table.drain_evictable();
            frames.sort_unstable_by_key(|(pid, _)| *pid);
            for (pid, frame) in frames {
                if frame.dirty {
                    self.wal_before_data_write(frame.lsn);
                    self.data_write_hit();
                    s.stats.physical_writes += 1;
                    self.disk.lock().write(pid, &frame.page);
                }
            }
        }
    }

    /// The ambient crash-point label for a disk write: the scope override
    /// when one is active (checkpoint / chain spill), else `base`.
    fn scope_label(&self, base: CrashPoint) -> CrashPoint {
        match self.crash_scope.load(Ordering::Relaxed) {
            1 => CrashPoint::Checkpoint,
            2 => CrashPoint::ChainSpill,
            _ => base,
        }
    }

    /// Enforce the log-before-page rule: in durable mode, force the log
    /// durable up to `lsn` before the caller writes a data page. Each log
    /// page written on the way is a crash-injection point. No-op (one
    /// relaxed load) with durability off.
    fn wal_before_data_write(&self, lsn: u64) {
        if !self.durable.load(Ordering::Relaxed) {
            return;
        }
        let label = self.scope_label(CrashPoint::WalWrite);
        let mut wal = self.wal.lock();
        if let Some(wal) = wal.as_mut() {
            wal.flush_up_to(lsn, &mut || self.injector.hit(label));
        }
    }

    /// Crash-injection point for a data-page write (the moment *before*
    /// the page hits the simulated disk). No-op with durability off.
    fn data_write_hit(&self) {
        if self.durable.load(Ordering::Relaxed) {
            self.injector.hit(self.scope_label(CrashPoint::PageFlush));
        }
    }

    /// Switch the write-ahead-log protocol on (or off). Turning it on
    /// creates the log on first use; turning it off stops logging but
    /// keeps the log contents (the pool can be re-enabled).
    ///
    /// **Contract:** the durable write path is single-threaded — the
    /// simulated crash/recovery harness drives one mutator, matching how
    /// the frozen benchmarks drive updates. Readers may still run
    /// concurrently (they take no WAL path). Enabling durability does not
    /// checkpoint; the index layer decides checkpoint boundaries.
    ///
    /// Enabling **adopts** every dirty resident frame into the log as a
    /// full page image: content written *before* enrollment has no log
    /// coverage (the log-before-page rule only protects writes made while
    /// durable), so without these images a crash between enrollment and
    /// the end of the first checkpoint would lose it. Adoption is pure
    /// log appends — no disk traffic, so no crash-injection point fires
    /// inside. The images become recoverable once the caller seals them
    /// under a commit or a completed checkpoint.
    pub fn set_durable(&self, on: bool) {
        if on {
            {
                let mut wal = self.wal.lock();
                if wal.is_none() {
                    *wal = Some(Wal::new());
                }
            }
            for state in self.shards.iter() {
                let s = &mut *state.shard.lock();
                for pid in s.table.sorted_pids() {
                    let frame = s.table.get_mut(pid).expect("listed frame resident");
                    if !frame.dirty {
                        continue;
                    }
                    let rec = WalRecord::PageWrite { pid, image: Box::new(frame.page.clone()) };
                    let lsn = {
                        let mut guard = self.wal.lock();
                        let wal = guard.as_mut().expect("created above");
                        let lsn = wal.append(&rec);
                        // The adoption image doubles as the page's
                        // pre-image floor: an undo of a later uncommitted
                        // write may restore stale disk content, but the
                        // committed adoption image is replayed over it by
                        // redo.
                        wal.mark_preimaged(pid);
                        lsn
                    };
                    frame.lsn = lsn;
                    state.mirror.set_lsn(pid, lsn);
                }
            }
        }
        self.durable.store(on, Ordering::Relaxed);
    }

    /// Whether the write-ahead-log protocol is currently active.
    pub fn is_durable(&self) -> bool {
        self.durable.load(Ordering::Relaxed)
    }

    /// The crash-point injector shared with the test harness. Arming it
    /// makes the N-th durable-mode disk-page write panic (see
    /// [`CrashInjector`]); probing records the label sequence instead.
    pub fn crash_injector(&self) -> &Arc<CrashInjector> {
        &self.injector
    }

    /// The retry / read-repair / quarantine ledger. All zeros on fault-
    /// free media — the subsystem costs nothing when nothing fails.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.snapshot()
    }

    /// Run `f` on the data disk's [`FaultInjector`] (arm schedules, read
    /// the fired-fault trace). Takes the disk lock; never call while
    /// inside a pool callback.
    pub fn with_fault_injector<R>(&self, f: impl FnOnce(&mut FaultInjector) -> R) -> R {
        f(self.disk.lock().faults_mut())
    }

    /// Run `f` on the data disk's [`LatencyInjector`] (arm slow-read
    /// schedules, read the fired-latency trace). Takes the disk lock;
    /// never call while inside a pool callback.
    pub fn with_latency_injector<R>(&self, f: impl FnOnce(&mut LatencyInjector) -> R) -> R {
        f(self.disk.lock().latency_mut())
    }

    /// The pool's virtual clock: one tick per logical page access, plus
    /// armed slow-read latency. Deadlines ([`peb_common::clock::Deadline`])
    /// built on this clock expire from *work done*, never wall time, so
    /// overload behavior is deterministic. Lock-free.
    pub fn clock(&self) -> &TickClock {
        &self.clock
    }

    /// Page ids currently quarantined (pinned resident after a failed
    /// read-repair), ascending across shards.
    pub fn quarantined_pages(&self) -> Vec<PageId> {
        let mut pids: Vec<PageId> =
            self.shards.iter().flat_map(|st| st.shard.lock().table.pinned_pids()).collect();
        pids.sort_unstable();
        pids
    }

    /// The page LSN published for `pid` in its shard mirror, if any —
    /// lock-free, exact when quiesced. `Some(0)` means the page is
    /// published but was never written under durability.
    pub fn page_lsn(&self, pid: PageId) -> Option<u64> {
        self.shards[self.shard_of(pid)].mirror.lsn_of(pid)
    }

    /// Run `f` with the given ambient [`CrashPoint`] label: every
    /// injection point that fires inside is attributed to `point` instead
    /// of its base label. Used by the checkpoint (internally) and by the
    /// message-chain spill path so the kill-point matrix can target those
    /// regions specifically.
    pub fn with_crash_scope<R>(&self, point: CrashPoint, f: impl FnOnce() -> R) -> R {
        let code = match point {
            CrashPoint::Checkpoint => 1,
            CrashPoint::ChainSpill => 2,
            CrashPoint::WalWrite | CrashPoint::PageFlush => 0,
        };
        let prev = self.crash_scope.swap(code, Ordering::Relaxed);
        // Restore on unwind too: an injected crash inside the scope must
        // not leak the override into the harvested pool.
        struct Restore<'a>(&'a AtomicU8, u8);
        impl Drop for Restore<'_> {
            fn drop(&mut self) {
                self.0.store(self.1, Ordering::Relaxed);
            }
        }
        let _restore = Restore(&self.crash_scope, prev);
        f()
    }

    /// Take a fuzzy checkpoint: log `CkptBegin` and one `TreeMeta` per
    /// entry of `trees` (tree id, root, height), flush every dirty frame
    /// (log-before-page per frame), then log `CkptEnd` and force the whole
    /// log durable. Afterwards the pre-image ledger restarts: the next
    /// write to any page logs a fresh pre-image. Returns the number of
    /// pages flushed. No-op (returning 0) with durability off.
    ///
    /// Recovery honors a checkpoint only once its `CkptEnd` is durable, so
    /// a crash anywhere inside falls back to the previous checkpoint —
    /// whose pre-images are still intact because the ledger is only
    /// cleared after the end record is on disk.
    pub fn checkpoint(&self, trees: &[(u32, PageId, u32)]) -> usize {
        if !self.durable.load(Ordering::Relaxed) {
            return 0;
        }
        self.with_crash_scope(CrashPoint::Checkpoint, || {
            let begin_seq = {
                let mut wal = self.wal.lock();
                let wal = wal.as_mut().expect("durable pool always has a wal");
                let begin_seq = wal.next_seq();
                wal.append(&WalRecord::CkptBegin);
                for &(tree, root, height) in trees {
                    wal.append(&WalRecord::TreeMeta { tree, root, height });
                }
                begin_seq
            };
            let flushed = self.flush_all();
            let mut wal = self.wal.lock();
            let wal = wal.as_mut().expect("durable pool always has a wal");
            wal.append(&WalRecord::CkptEnd { begin_seq });
            let label = self.scope_label(CrashPoint::WalWrite);
            wal.flush(&mut || self.injector.hit(label));
            wal.clear_preimaged();
            flushed
        })
    }

    /// Log a commit record covering `ops` completed index operations and
    /// force the log durable — the boundary recovery rolls forward to.
    /// No-op with durability off.
    pub fn wal_commit(&self, ops: u64) {
        if !self.durable.load(Ordering::Relaxed) {
            return;
        }
        let label = self.scope_label(CrashPoint::WalWrite);
        let mut wal = self.wal.lock();
        if let Some(wal) = wal.as_mut() {
            wal.append(&WalRecord::Commit { ops });
            wal.flush(&mut || self.injector.hit(label));
        }
    }

    /// Force the whole log durable without committing anything: every
    /// log-page write on the way is a counted crash-injection point under
    /// the ambient scope label. Callers use this at the boundary of bulk
    /// structural work (e.g. a message-chain spill) so the
    /// committed-but-unforced log window stays bounded — recovery still
    /// rolls the forced-but-uncommitted tail back to the last commit.
    /// No-op with durability off.
    pub fn wal_force(&self) {
        if !self.durable.load(Ordering::Relaxed) {
            return;
        }
        let label = self.scope_label(CrashPoint::WalWrite);
        let mut wal = self.wal.lock();
        if let Some(wal) = wal.as_mut() {
            wal.flush(&mut || self.injector.hit(label));
        }
    }

    /// Log a tree-metadata record (root page and height of tree `tree`)
    /// without forcing the log. Called by the B+-tree on every root change
    /// so recovery knows each tree's root without scanning for it. Ignored
    /// with durability off or for an unregistered tree (`u32::MAX`).
    pub fn wal_tree_meta(&self, tree: u32, root: PageId, height: u32) {
        if tree == u32::MAX || !self.durable.load(Ordering::Relaxed) {
            return;
        }
        let mut wal = self.wal.lock();
        if let Some(wal) = wal.as_mut() {
            wal.append(&WalRecord::TreeMeta { tree, root, height });
        }
    }

    /// Log a re-key record (logical key move inside tree `tree`) without
    /// forcing the log. Purely informational for recovery statistics —
    /// the page images carry the actual state. Ignored with durability
    /// off.
    pub fn wal_rekey(&self, tree: u32, old: u128, new: u128) {
        if tree == u32::MAX || !self.durable.load(Ordering::Relaxed) {
            return;
        }
        let mut wal = self.wal.lock();
        if let Some(wal) = wal.as_mut() {
            wal.append(&WalRecord::Rekey { tree, old, new });
        }
    }

    /// The write-ahead log's counters (records/bytes appended, log pages
    /// written, flushes) — zeroes if durability was never enabled.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.lock().as_ref().map(Wal::stats).unwrap_or_default()
    }

    /// Clone the durable state a crash would leave behind: the data disk
    /// and the log disk, exactly as the simulated platters stand right
    /// now. Buffered frames and the in-memory log tail are — correctly —
    /// not part of it. The crash harness calls this after catching the
    /// injected panic, then feeds both to [`crate::wal::recover`].
    pub fn harvest_crash_state(&self) -> (DiskSim, DiskSim) {
        let data = self.disk.lock().clone();
        let log = self.wal.lock().as_ref().map(|w| w.disk().clone()).unwrap_or_default();
        (data, log)
    }

    /// A durable pool resuming from recovered state: `data` is the data
    /// disk after [`crate::wal::recover`] replayed the log tail, `wal` is
    /// the resumed log ([`Wal::resume`]). The pool starts cold (no
    /// resident frames) with durability on; chain with
    /// [`BufferPool::optimistic`] as usual.
    pub fn from_recovered(capacity: usize, shards: usize, data: DiskSim, wal: Wal) -> Self {
        let pool = BufferPool::with_shards(capacity, shards);
        let mut data = data;
        data.set_clock(pool.clock.clone());
        *pool.disk.lock() = data;
        *pool.wal.lock() = Some(wal);
        pool.durable.store(true, Ordering::Relaxed);
        pool
    }

    /// The pool-wide I/O ledger: the element-wise sum of every shard's
    /// counters — locked-path counters plus the logical reads performed
    /// optimistically — so the paper's single set of numbers survives
    /// both sharding and the lock-free read path. Shards are read one
    /// lock at a time, so under concurrent traffic this is a
    /// read-committed aggregate, exact once accesses quiesce (any
    /// single-threaded measurement reads exact totals).
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::new(4);
    /// let pid = pool.allocate();
    /// pool.clear(); // evict, so the next read must go to disk
    /// pool.reset_stats();
    ///
    /// pool.read(pid, |_| ()); // miss: 1 physical read
    /// pool.read(pid, |_| ()); // hit: free
    ///
    /// let s = pool.stats();
    /// assert_eq!(s.logical_reads, 2);
    /// assert_eq!(s.physical_reads, 1);
    /// assert_eq!(s.total_io(), 1); // physical reads + writes — the paper's metric
    /// assert_eq!(s.hit_ratio(), 0.5); // 1 hit out of 2 logical reads
    /// ```
    pub fn stats(&self) -> IoStats {
        self.shards.iter().fold(IoStats::default(), |acc, s| acc.merged(&Self::shard_io(s)))
    }

    fn shard_io(state: &ShardState) -> IoStats {
        let mut io = state.shard.lock().stats;
        io.logical_reads += state.opt_logical.load(Ordering::Relaxed);
        io
    }

    /// Each shard's local I/O counters, in shard order. `stats()` is
    /// exactly the element-wise sum of these.
    pub fn shard_stats(&self) -> Vec<IoStats> {
        self.shards.iter().map(Self::shard_io).collect()
    }

    /// The pool-wide locking ledger: optimistic hit/retry/fallback counts
    /// and shard-mutex acquisitions, summed across shards. Deterministic
    /// for a fixed single-threaded workload — the machine-independent
    /// measure of read-path decontention.
    ///
    /// ```
    /// use peb_storage::BufferPool;
    ///
    /// let pool = BufferPool::new(4);
    /// let pid = pool.allocate();
    /// pool.reset_stats();
    ///
    /// // Resident and published: the lock-free path succeeds.
    /// assert!(pool.try_read_optimistic(pid, |p| p.get_u64(0)).is_some());
    /// let s = pool.lock_stats();
    /// assert_eq!(s.optimistic_hits, 1);
    /// assert_eq!(s.lock_acquisitions, 0, "no mutex on the optimistic path");
    ///
    /// // The locked path counts an acquisition instead.
    /// pool.read(pid, |_| ());
    /// assert_eq!(pool.lock_stats().lock_acquisitions, 1);
    /// ```
    pub fn lock_stats(&self) -> LockStats {
        let mut stats =
            self.shards.iter().fold(LockStats::default(), |acc, s| acc.merged(&s.lock_stats()));
        stats.latch_acquisitions = self.latches.acquisitions();
        stats.latch_waits = self.latches.contended_waits();
        stats
    }

    /// Each shard's locking counters, in shard order ([`BufferPool::lock_stats`]
    /// is the element-wise sum). The per-shard `lock_acquisitions` column
    /// is what the acquired-lock hot-share metric is computed from.
    pub fn shard_lock_stats(&self) -> Vec<LockStats> {
        self.shards.iter().map(ShardState::lock_stats).collect()
    }

    /// Zero every shard's I/O and locking counters. Also repairs any
    /// mirror slot whose version is odd (none should be — publishers
    /// complete under the shard lock — but a poisoned slot would silently
    /// disable optimistic reads of its page forever, so the reset is
    /// defensive about it). Published pages stay published: resetting
    /// counters must not cool the cache.
    pub fn reset_stats(&self) {
        for state in self.shards.iter() {
            let s = &mut *state.shard.lock();
            s.stats = IoStats::default();
            state.mirror.repair();
            state.opt_logical.store(0, Ordering::Relaxed);
            state.opt_hits.store(0, Ordering::Relaxed);
            state.opt_conflicts.store(0, Ordering::Relaxed);
            state.opt_fallbacks.store(0, Ordering::Relaxed);
            state.lock_acqs.store(0, Ordering::Relaxed);
        }
        self.latches.reset_stats();
    }

    /// Total frame budget across all shards.
    pub fn capacity(&self) -> usize {
        self.total_capacity
    }

    /// Number of lock shards (always a power of two).
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Each shard's frame budget, in shard order; sums to
    /// [`BufferPool::capacity`] (see the remainder rule in the module
    /// docs).
    pub fn shard_capacities(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.shard.lock().table.capacity()).collect()
    }

    /// Frames currently resident across all shards; never exceeds
    /// [`BufferPool::capacity`].
    pub fn resident_pages(&self) -> usize {
        self.shards.iter().map(|s| s.shard.lock().table.len()).sum()
    }

    /// Pages allocated on the simulated disk.
    pub fn num_disk_pages(&self) -> usize {
        self.disk.lock().num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_free_misses_cost_one_read() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        pool.reset_stats();
        for _ in 0..10 {
            pool.read(pid, |p| p.get_u64(0));
        }
        let s = pool.stats();
        assert_eq!(s.physical_reads, 0, "resident page never touches disk");
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.hit_ratio(), 1.0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        let a = pool.allocate();
        let b = pool.allocate(); // pool now holds {a, b}
        pool.read(a, |_| ()); // a is now more recent than b
        let c = pool.allocate(); // must evict b
        pool.reset_stats();
        pool.read(a, |_| ());
        pool.read(c, |_| ());
        assert_eq!(pool.stats().physical_reads, 0, "a and c stayed resident");
        pool.read(b, |_| ());
        assert_eq!(pool.stats().physical_reads, 1, "b was the LRU victim");
    }

    #[test]
    fn optimistic_touches_protect_pages_from_eviction() {
        // Same shape as `lru_evicts_least_recently_used`, but the
        // recency-refreshing touch of `a` is optimistic: eviction must
        // still pick `b`, proving lock-free hits feed the LRU clock.
        let pool = BufferPool::new(2);
        let a = pool.allocate();
        let b = pool.allocate();
        assert!(pool.try_read_optimistic(a, |_| ()).is_some());
        let c = pool.allocate(); // must evict b, not a
        pool.reset_stats();
        pool.read(a, |_| ());
        pool.read(c, |_| ());
        assert_eq!(pool.stats().physical_reads, 0, "a and c stayed resident");
        pool.read(b, |_| ());
        assert_eq!(pool.stats().physical_reads, 1, "b was the LRU victim");
    }

    #[test]
    fn dirty_eviction_writes_back_and_preserves_data() {
        let pool = BufferPool::new(1);
        let a = pool.allocate();
        pool.write(a, |p| p.put_u64(0, 77));
        let _b = pool.allocate(); // evicts dirty a -> physical write
        assert!(pool.stats().physical_writes >= 1);
        // Reading a again must see the written value (via disk).
        assert_eq!(pool.read(a, |p| p.get_u64(0)), 77);
    }

    #[test]
    fn flush_and_clear_round_trip() {
        let pool = BufferPool::new(8);
        let pids: Vec<PageId> = (0..5).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u32(0, i as u32));
        }
        pool.flush_all();
        pool.clear();
        pool.reset_stats();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.read(*pid, |p| p.get_u32(0)), i as u32);
        }
        // All 5 were cold: exactly 5 physical reads.
        assert_eq!(pool.stats().physical_reads, 5);
    }

    #[test]
    fn total_io_combines_reads_and_writes() {
        let s = IoStats { physical_reads: 3, physical_writes: 2, logical_reads: 10 };
        assert_eq!(s.total_io(), 5);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn untouched_pool_reports_perfect_hit_ratio() {
        // Documented choice: zero logical reads means nothing ever missed.
        assert_eq!(IoStats::default().hit_ratio(), 1.0);
        let pool = BufferPool::new(4);
        assert_eq!(pool.stats().hit_ratio(), 1.0);
        // One miss drops it to 0.0; a subsequent hit brings it to 0.5.
        let pid = pool.allocate();
        pool.clear();
        pool.reset_stats();
        pool.read(pid, |_| ());
        assert_eq!(pool.stats().hit_ratio(), 0.0);
        pool.read(pid, |_| ());
        assert_eq!(pool.stats().hit_ratio(), 0.5);
    }

    #[test]
    fn workload_larger_than_pool_thrashes() {
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..16).map(|_| pool.allocate()).collect();
        pool.clear();
        pool.reset_stats();
        // Sequential scan twice: with only 4 frames over 16 pages every
        // access misses.
        for _ in 0..2 {
            for pid in &pids {
                pool.read(*pid, |_| ());
            }
        }
        assert_eq!(pool.stats().physical_reads, 32);
    }

    #[test]
    fn capacity_splits_with_remainder_to_low_shards() {
        let pool = BufferPool::with_shards(11, 4);
        assert_eq!(pool.num_shards(), 4);
        assert_eq!(pool.shard_capacities(), vec![3, 3, 3, 2]);
        assert_eq!(pool.capacity(), 11);

        // Power-of-two rounding (3 -> 4) and clamping (each shard >= 1).
        assert_eq!(BufferPool::with_shards(12, 3).num_shards(), 4);
        assert_eq!(BufferPool::with_shards(3, 16).num_shards(), 2);
        assert_eq!(BufferPool::with_shards(1, 16).num_shards(), 1);
    }

    #[test]
    fn sharded_pool_preserves_data_and_sums_stats() {
        let pool = BufferPool::with_shards(8, 4);
        let pids: Vec<PageId> = (0..32).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u64(0, i as u64 * 7));
        }
        pool.clear();
        pool.reset_stats();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.read(*pid, |p| p.get_u64(0)), i as u64 * 7);
        }
        let total = pool.stats();
        assert_eq!(total.logical_reads, 32);
        assert_eq!(total.physical_reads, 32, "all cold after clear");
        let summed = pool.shard_stats().iter().fold(IoStats::default(), |acc, s| acc.merged(s));
        assert_eq!(total, summed, "stats() is the sum of per-shard counters");
        assert!(pool.resident_pages() <= pool.capacity());
    }

    #[test]
    fn shard_of_uses_low_bits_round_robin() {
        let pool = BufferPool::with_shards(16, 4);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        let shards: Vec<usize> = pids.iter().map(|p| pool.shard_of(*p)).collect();
        assert_eq!(shards, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn eviction_is_per_shard_and_respects_budgets() {
        // 2 shards x 2 frames. Four pages of shard 0 thrash its 2 frames
        // while shard 1's residents survive untouched.
        let pool = BufferPool::with_shards(4, 2);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        let s0: Vec<PageId> = pids.iter().copied().filter(|p| pool.shard_of(*p) == 0).collect();
        let s1: Vec<PageId> = pids.iter().copied().filter(|p| pool.shard_of(*p) == 1).collect();
        pool.clear();
        // Warm shard 1 with its first two pages.
        pool.read(s1[0], |_| ());
        pool.read(s1[1], |_| ());
        pool.reset_stats();
        // Cycle all four shard-0 pages twice: every access misses.
        for _ in 0..2 {
            for pid in &s0 {
                pool.read(*pid, |_| ());
            }
        }
        assert_eq!(pool.stats().physical_reads, 8, "shard 0 thrashes");
        pool.read(s1[0], |_| ());
        pool.read(s1[1], |_| ());
        assert_eq!(
            pool.stats().physical_reads,
            8,
            "shard 1 residents were never evicted by shard 0 pressure"
        );
    }

    #[test]
    fn optimistic_read_sees_written_data_without_locks() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(8, 4242));
        pool.reset_stats();
        assert_eq!(pool.try_read_optimistic(pid, |p| p.get_u64(8)), Some(4242));
        let locks = pool.lock_stats();
        assert_eq!(locks.optimistic_hits, 1);
        assert_eq!(locks.lock_acquisitions, 0);
        // The hit is a normal logical read on the I/O ledger.
        let io = pool.stats();
        assert_eq!(io.logical_reads, 1);
        assert_eq!(io.physical_reads, 0);
    }

    #[test]
    fn optimistic_read_of_cold_page_reports_unpublished() {
        let pool = BufferPool::new(2);
        let pid = pool.allocate();
        pool.clear(); // evicted: no longer published
        pool.reset_stats();
        assert!(pool.try_read_optimistic(pid, |_| ()).is_none());
        let locks = pool.lock_stats();
        assert_eq!(locks.locked_fallbacks, 1);
        assert_eq!(locks.optimistic_hits, 0);
        // Failed attempts count nothing on the I/O ledger.
        assert_eq!(pool.stats().logical_reads, 0);
        // The locked fallback faults it in and republishes it.
        pool.read(pid, |_| ());
        assert!(pool.try_read_optimistic(pid, |_| ()).is_some());
    }

    #[test]
    fn write_bumps_version_and_read_version_tracks_it() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        let v1 = pool.read_version(pid).expect("allocate publishes");
        assert_eq!(v1 & 1, 0, "published versions are even");
        pool.write(pid, |p| p.put_u64(0, 1));
        let v2 = pool.read_version(pid).expect("still published");
        assert!(v2 > v1, "a write must advance the version");
        // A plain locked read leaves the version alone.
        pool.read(pid, |_| ());
        assert_eq!(pool.read_version(pid), Some(v2));
    }

    #[test]
    fn disabled_pool_never_reads_optimistically() {
        let pool = BufferPool::with_shards(4, 1).optimistic(false);
        assert!(!pool.optimistic_reads_enabled());
        let pid = pool.allocate();
        assert!(pool.try_read_optimistic(pid, |_| ()).is_none());
        assert_eq!(pool.read_version(pid), None);
        // Disabled pools report no optimistic traffic at all.
        let locks = pool.lock_stats();
        assert_eq!(locks.optimistic_attempts(), 0);
        assert!(locks.lock_acquisitions > 0, "allocate still took the shard lock");
    }

    #[test]
    fn clear_and_reset_stats_leave_versions_usable() {
        // Regression for the poisoning bug class: after clear() every
        // slot must be unpublished at an even version, and reset_stats()
        // must keep already-published pages readable optimistically.
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..4).map(|_| pool.allocate()).collect();
        pool.clear();
        for pid in &pids {
            assert_eq!(pool.read_version(*pid), None, "clear unpublishes everything");
        }
        pool.read(pids[0], |_| ()); // fault in + publish
        pool.reset_stats();
        assert!(
            pool.try_read_optimistic(pids[0], |_| ()).is_some(),
            "reset_stats must not cool the published cache"
        );
        assert_eq!(pool.lock_stats().optimistic_hits, 1, "counters restarted from zero");
    }

    #[test]
    fn snapshot_reads_count_like_any_other_touch() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(0, 99));
        pool.reset_stats();
        let mut snap = PageSnapshot::new();
        assert!(pool.read_snapshot(pid, &mut snap), "published page snapshots lock-free");
        assert!(snap.is_versioned());
        assert_eq!(snap.pid(), pid);
        assert_eq!(snap.page().get_u64(0), 99);
        let io = pool.stats();
        assert_eq!(io.logical_reads, 1, "one snapshot = one logical read");
        assert_eq!(pool.lock_stats().lock_acquisitions, 0, "taken without a mutex");
        // Validation and reuse cost nothing further.
        assert!(pool.snapshot_valid(&snap));
        assert_eq!(pool.stats(), io, "revalidation is free on the ledger");
    }

    #[test]
    fn snapshot_falls_back_locked_and_never_revalidates() {
        let pool = BufferPool::new(2);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(0, 123));
        pool.flush_all();
        pool.clear(); // unpublished: the snapshot must go through the lock
        pool.reset_stats();
        let mut snap = PageSnapshot::new();
        assert!(!pool.read_snapshot(pid, &mut snap), "cold page needs the locked path");
        assert!(!snap.is_versioned());
        assert_eq!(snap.page().get_u64(0), 123, "the locked copy is still exact");
        assert!(!pool.snapshot_valid(&snap), "locked snapshots are single-use");
        let io = pool.stats();
        assert_eq!(io.logical_reads, 1);
        assert_eq!(io.physical_reads, 1, "faulted in once");
        // Eviction invalidates a versioned snapshot too.
        let mut warm = PageSnapshot::new();
        assert!(pool.read_snapshot(pid, &mut warm), "resident again after the fault");
        pool.clear();
        assert!(!pool.snapshot_valid(&warm), "eviction unpublishes the page");
    }

    #[test]
    fn disabled_pool_snapshots_through_the_lock() {
        let pool = BufferPool::with_shards(4, 1).optimistic(false);
        let pid = pool.allocate();
        let mut snap = PageSnapshot::new();
        assert!(!pool.read_snapshot(pid, &mut snap));
        assert!(!pool.snapshot_valid(&snap));
        assert_eq!(pool.lock_stats().optimistic_attempts(), 0);
    }

    #[test]
    fn identical_traces_give_identical_lock_stats() {
        // LockStats is deterministic for a fixed single-threaded trace —
        // the property the BENCH_optreads trajectory entry relies on.
        let run = || {
            let pool = BufferPool::new(4);
            let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
            for round in 0..3 {
                for (i, pid) in pids.iter().enumerate() {
                    if (i + round) % 3 == 0 {
                        pool.write(*pid, |p| p.put_u64(0, round as u64));
                    } else if pool.try_read_optimistic(*pid, |_| ()).is_none() {
                        pool.read(*pid, |_| ());
                    }
                }
            }
            (pool.lock_stats(), pool.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn colliding_pages_share_a_mirror_set_without_stealing() {
        // Two resident pages whose indexes collide (capacity 4, pids 0 and
        // 4: same set) used to fight over one direct-mapped slot — every
        // alternating read stole it back, so the optimistic path fell back
        // on every touch. With 2-way sets both stay published.
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        let (a, b) = (pids[0], pids[4]);
        pool.read(a, |_| ());
        pool.read(b, |_| ());
        pool.reset_stats();
        for _ in 0..16 {
            assert!(pool.try_read_optimistic(a, |_| ()).is_some());
            assert!(pool.try_read_optimistic(b, |_| ()).is_some());
        }
        let s = pool.lock_stats();
        assert_eq!(s.optimistic_hits, 32, "both ways of the set stay published");
        // The BENCH_optreads-shaped check: the alternating-collision trace
        // must not regress the fallback rate (direct mapping scored 1.0).
        assert_eq!(s.locked_fallbacks, 0);
        assert_eq!(s.optimistic_hit_rate(), 1.0);
        assert_eq!(s.lock_acquisitions, 0, "no mutex on the optimistic path");
    }

    #[test]
    fn third_collider_steals_the_least_recently_touched_way() {
        // Three pages of one set over two ways: publishing the third
        // steals the cold way, and the victim's recency folds back into
        // its frame (eviction order below proves no LRU signal was lost).
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..12).map(|_| pool.allocate()).collect();
        let (a, b, c) = (pids[0], pids[4], pids[8]); // all in set 0
        pool.clear();
        pool.read(a, |_| ());
        pool.read(b, |_| ());
        // Touch `b` optimistically so `a` is the set's cold way.
        assert!(pool.try_read_optimistic(b, |_| ()).is_some());
        pool.read(c, |_| ());
        assert!(pool.try_read_optimistic(b, |_| ()).is_some(), "warm way survives");
        assert!(pool.try_read_optimistic(c, |_| ()).is_some(), "new page published");
        assert!(
            pool.try_read_optimistic(a, |_| ()).is_none(),
            "cold way was stolen; its reads fall back"
        );
        // The displaced page is still resident and correct via the lock.
        pool.read(a, |_| ());
    }

    #[test]
    fn transient_faults_are_retried_invisibly() {
        use crate::disk::FaultKind;
        let pool = BufferPool::new(2);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(0, 5));
        pool.flush_all();
        pool.clear();
        pool.reset_stats();
        // The next physical read of `pid` is its first ever (allocation
        // reads nothing); it fails once and the fetch must absorb it.
        pool.with_fault_injector(|f| f.arm_read(Some(pid), 0, FaultKind::TransientRead));
        assert_eq!(pool.read(pid, |p| p.get_u64(0)), 5);
        let io = pool.stats();
        assert_eq!(io.physical_reads, 1, "one pool-ledger read despite the retry");
        let fs = pool.fault_stats();
        assert_eq!(fs.transient_retries, 1);
        assert_eq!(fs.backoff_ticks, 2, "first retry accrues 2^1 ticks");
        assert_eq!(fs.surfaced_errors, 0);
    }

    #[test]
    fn exhausted_transients_surface_typed() {
        use crate::disk::FaultKind;
        let pool = BufferPool::new(2);
        let pid = pool.allocate();
        pool.flush_all();
        pool.clear();
        pool.with_fault_injector(|f| {
            // Fail the fetch attempt and all TRANSIENT_RETRIES retries.
            for nth in 0..=u64::from(TRANSIENT_RETRIES) {
                f.arm_read(Some(pid), nth, FaultKind::TransientRead);
            }
        });
        let err = pool.try_read(pid, |_| ()).unwrap_err();
        assert_eq!(err, IoFault::Transient { pid });
        let fs = pool.fault_stats();
        assert_eq!(fs.transient_retries, u64::from(TRANSIENT_RETRIES));
        assert_eq!(fs.transient_exhausted, 1);
        assert_eq!(fs.surfaced_errors, 1);
        // The medium is intact: the next fetch succeeds.
        assert!(pool.try_read(pid, |_| ()).is_ok());
    }

    #[test]
    fn non_durable_corruption_surfaces_typed() {
        use crate::disk::FaultKind;
        let pool = BufferPool::new(2);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(0, 9));
        pool.flush_all();
        pool.clear();
        pool.with_fault_injector(|f| f.arm_read(Some(pid), 0, FaultKind::BitFlip { bits: 1 }));
        assert!(matches!(pool.try_read(pid, |_| ()), Err(IoFault::Corrupt { .. })));
        let fs = pool.fault_stats();
        assert_eq!(fs.checksum_mismatches, 1);
        assert_eq!(fs.repairs_attempted, 0, "no wal, nothing to repair from");
        assert_eq!(fs.surfaced_errors, 1);
    }

    #[test]
    fn durable_corruption_is_read_repaired_from_the_wal() {
        use crate::disk::FaultKind;
        let pool = BufferPool::new(2);
        pool.set_durable(true);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(0, 77));
        pool.wal_commit(1);
        pool.flush_all();
        pool.clear();
        pool.reset_stats();
        pool.with_fault_injector(|f| f.arm_read(Some(pid), 0, FaultKind::BitFlip { bits: 2 }));
        assert_eq!(pool.read(pid, |p| p.get_u64(0)), 77, "repaired content is exact");
        let fs = pool.fault_stats();
        assert_eq!(fs.checksum_mismatches, 1);
        assert_eq!(fs.repairs_attempted, 1);
        assert_eq!(fs.repairs_succeeded, 1);
        assert_eq!(fs.quarantines, 0);
        assert_eq!(pool.stats().physical_reads, 1, "repair traffic stays off the pool ledger");
        // The rewrite healed the medium: a cold re-read needs no repair.
        pool.flush_all();
        pool.clear();
        assert_eq!(pool.read(pid, |p| p.get_u64(0)), 77);
        assert_eq!(pool.fault_stats().repairs_attempted, 1);
    }

    #[test]
    fn failed_repair_quarantines_and_serves_the_wal_image() {
        let pool = BufferPool::new(2);
        pool.set_durable(true);
        let pid = pool.allocate();
        pool.write(pid, |p| p.put_u64(0, 123));
        pool.wal_commit(1);
        pool.flush_all();
        pool.clear();
        // A grown defect: the sector is permanently unreadable, so the
        // repair rewrites can never re-verify.
        pool.with_fault_injector(|f| f.mark_bad_sector(pid));
        assert_eq!(pool.read(pid, |p| p.get_u64(0)), 123, "served from the WAL image");
        let fs = pool.fault_stats();
        assert_eq!(fs.bad_sector_reads, 1);
        assert_eq!(fs.repairs_attempted, 1);
        assert_eq!(fs.repairs_succeeded, 0);
        assert_eq!(fs.quarantines, 1);
        assert_eq!(pool.quarantined_pages(), vec![pid]);
        // The pinned frame survives clear() — it is the only good copy —
        // and keeps serving reads without touching the bad sector.
        pool.clear();
        pool.reset_stats();
        assert_eq!(pool.read(pid, |p| p.get_u64(0)), 123);
        assert_eq!(pool.stats().physical_reads, 0, "quarantined page reads are buffer hits");
        assert_eq!(pool.fault_stats().quarantines, 1, "no re-quarantine");
    }

    #[test]
    fn quarantined_frames_do_not_starve_the_shard() {
        // Capacity 1: the quarantined frame occupies the only slot, and
        // the shard must transiently exceed its budget rather than evict
        // it or deadlock.
        let pool = BufferPool::new(1);
        pool.set_durable(true);
        let a = pool.allocate();
        pool.write(a, |p| p.put_u64(0, 1));
        pool.wal_commit(1);
        let b = pool.allocate(); // evicts dirty a
        pool.write(b, |p| p.put_u64(0, 2));
        pool.wal_commit(2);
        pool.flush_all();
        pool.clear();
        pool.with_fault_injector(|f| f.mark_bad_sector(a));
        assert_eq!(pool.read(a, |p| p.get_u64(0)), 1, "quarantined");
        assert_eq!(pool.quarantined_pages(), vec![a]);
        // Both pages stay readable even though the budget is 1 frame.
        assert_eq!(pool.read(b, |p| p.get_u64(0)), 2);
        assert_eq!(pool.read(a, |p| p.get_u64(0)), 1);
        assert_eq!(pool.read(b, |p| p.get_u64(0)), 2);
    }

    #[test]
    fn fault_stats_are_zero_on_clean_media() {
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u64(0, i as u64));
        }
        pool.flush_all();
        pool.clear();
        for pid in &pids {
            pool.read(*pid, |_| ());
        }
        assert_eq!(pool.fault_stats(), FaultStats::default());
        assert!(pool.quarantined_pages().is_empty());
    }

    #[test]
    fn latch_traffic_lands_on_the_lock_ledger() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        pool.reset_stats();
        let held = pool.latch(pid);
        assert!(pool.try_latch(pid).is_none(), "latches are exclusive");
        drop(held);
        let s = pool.lock_stats();
        assert_eq!(s.latch_acquisitions, 1);
        assert_eq!(s.latch_waits, 1, "the failed try counts as a collision");
        assert_eq!(s.lock_acquisitions, 0, "latching touches no pool shard mutex");
        pool.reset_stats();
        assert_eq!(pool.lock_stats().latch_acquisitions, 0);
    }
}
