//! Per-page write latches: the writer half of optimistic lock coupling.
//!
//! The seqlock mirror (PR 4) made readers lock-free; this table gives
//! *writers* something finer than a whole index shard to serialize on. A
//! latch protects one page's **structure** while a writer modifies it —
//! readers never take latches (they validate versions instead), so a
//! latched split or merge runs concurrently with every optimistic read.
//!
//! The table is a fixed power-of-two array of mutex slots hashed by
//! [`PageId`]. Two pages may collide on one slot; that is a *false
//! conflict*, never a correctness problem: holding the slot simply
//! serializes writers of both pages. What collisions must not cause is
//! deadlock, which the discipline enforced by [`BufferPool::latch`] /
//! [`BufferPool::try_latch`] rules out:
//!
//! * a **blocking** acquire is only legal while holding *no* other latch
//!   (writers block only on their first latch — the leaf);
//! * every additional latch (parent chain, siblings) must be a
//!   **try**-acquire, and a failed try releases everything and restarts
//!   the operation from its optimistic descent.
//!
//! With blocking acquisition limited to latch-free threads there is no
//! hold-and-wait, hence no cycle, hence no deadlock — regardless of how
//! pids hash. Callers deduplicate same-slot acquisitions through
//! [`BufferPool::latch_slot`] (re-locking a held slot would self-deadlock;
//! an exclusive slot already held covers every page hashing to it).
//!
//! Latch traffic lands on [`super::LockStats`] (`latch_acquisitions`,
//! `latch_waits`) — the deterministic evidence that the OLC write path
//! pins O(path-scope) pages per update instead of a whole shard.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, MutexGuard};
use peb_common::sched;

use crate::page::PageId;

/// Number of latch slots. Plenty for the pool sizes the experiments run
/// (tens to thousands of frames): with uniform hashing, the chance two
/// *concurrently latched* pages collide stays negligible, and a collision
/// only costs a restart.
const LATCH_SLOTS: usize = 1024;

/// The pool-global page-latch table. See the [module docs](self).
pub(super) struct LatchTable {
    slots: Box<[Mutex<()>]>,
    /// [`super::LockStats::latch_acquisitions`] slice.
    acqs: AtomicU64,
    /// [`super::LockStats::latch_waits`] slice.
    waits: AtomicU64,
}

impl LatchTable {
    pub(super) fn new() -> Self {
        LatchTable {
            slots: (0..LATCH_SLOTS).map(|_| Mutex::new(())).collect(),
            acqs: AtomicU64::new(0),
            waits: AtomicU64::new(0),
        }
    }

    /// The slot `pid` hashes to. Fibonacci hashing spreads the
    /// sequentially-allocated pids of one tree level across the table.
    pub(super) fn slot_of(pid: PageId) -> usize {
        ((pid.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 54) as usize & (LATCH_SLOTS - 1)
    }

    /// Blocking acquire. Only legal with no other latch held (see the
    /// module docs); counts a wait when the slot was contended.
    pub(super) fn lock(&self, pid: PageId) -> PageLatch<'_> {
        let slot = Self::slot_of(pid);
        let guard = match self.slots[slot].try_lock() {
            Some(g) => g,
            None => {
                self.waits.fetch_add(1, Ordering::Relaxed);
                self.slots[slot].lock()
            }
        };
        self.acqs.fetch_add(1, Ordering::Relaxed);
        sched::probe(sched::Site::LatchAcquire);
        PageLatch { guard, slot }
    }

    /// Non-blocking acquire; `None` means the caller must release every
    /// latch it holds and restart its operation.
    pub(super) fn try_lock(&self, pid: PageId) -> Option<PageLatch<'_>> {
        let slot = Self::slot_of(pid);
        match self.slots[slot].try_lock() {
            Some(guard) => {
                self.acqs.fetch_add(1, Ordering::Relaxed);
                sched::probe(sched::Site::LatchAcquire);
                Some(PageLatch { guard, slot })
            }
            None => {
                self.waits.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub(super) fn acquisitions(&self) -> u64 {
        self.acqs.load(Ordering::Relaxed)
    }

    pub(super) fn contended_waits(&self) -> u64 {
        self.waits.load(Ordering::Relaxed)
    }

    pub(super) fn reset_stats(&self) {
        self.acqs.store(0, Ordering::Relaxed);
        self.waits.store(0, Ordering::Relaxed);
    }
}

/// An exclusive hold on one latch slot (and thereby on every page that
/// hashes to it). Released on drop.
pub struct PageLatch<'a> {
    #[allow(dead_code)] // held for its Drop; never read
    guard: MutexGuard<'a, ()>,
    slot: usize,
}

impl PageLatch<'_> {
    /// The slot this latch holds — callers compare slots to deduplicate
    /// before acquiring a second latch that hashes identically.
    pub fn slot(&self) -> usize {
        self.slot
    }
}

impl Drop for PageLatch<'_> {
    fn drop(&mut self) {
        sched::probe(sched::Site::LatchRelease);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_pid_hits_same_slot_and_try_fails_while_held() {
        let t = LatchTable::new();
        let pid = PageId(42);
        let held = t.lock(pid);
        assert!(t.try_lock(pid).is_none(), "slot is exclusive");
        drop(held);
        assert!(t.try_lock(pid).is_some(), "released slot reacquires");
    }

    #[test]
    fn counters_classify_grants_and_waits() {
        let t = LatchTable::new();
        let a = t.lock(PageId(7));
        assert_eq!((t.acquisitions(), t.contended_waits()), (1, 0));
        assert!(t.try_lock(PageId(7)).is_none());
        assert_eq!((t.acquisitions(), t.contended_waits()), (1, 1));
        drop(a);
        let _b = t.lock(PageId(7));
        assert_eq!((t.acquisitions(), t.contended_waits()), (2, 1));
    }

    #[test]
    fn distinct_pids_usually_get_distinct_slots() {
        // Fibonacci hashing over a sequential pid range: no more than a
        // trivial number of collisions among 64 neighboring pages.
        let slots: std::collections::HashSet<_> =
            (0..64u32).map(|p| LatchTable::slot_of(PageId(p))).collect();
        assert!(slots.len() >= 60, "sequential pids must spread: {} slots", slots.len());
    }
}
