//! Simulated disk storage with a sharded LRU buffer pool and I/O
//! accounting.
//!
//! The paper evaluates every query algorithm by **I/O cost**: the number of
//! 4 KB disk pages physically read/written while a 50-page LRU buffer is in
//! front of the disk (Sec 7.1). This crate reproduces exactly that metric
//! without real disks: [`disk::DiskSim`] is an in-memory array of pages that
//! counts physical accesses, and [`pool::BufferPool`] is the LRU cache both
//! indexes run through. A buffer hit is free; a miss costs one physical
//! read (plus one write if the evicted frame was dirty).
//!
//! The pool is sharded by page id so that concurrent readers only contend
//! on the shard they touch, while [`pool::BufferPool::stats`] keeps
//! summing one exact pool-wide ledger; [`pool::BufferPool::new`] pins a
//! single shard — the paper-exact configuration every frozen benchmark
//! uses — and [`pool::BufferPool::sharded`] enables the concurrent
//! configuration. On top of the shards sits a lock-free **versioned read
//! path**: every resident page can be published in a seqlock-style mirror
//! and copied out by [`pool::BufferPool::try_read_optimistic`] without
//! touching any mutex, with the [`pool::LockStats`] ledger counting how
//! much locking the read path avoided. See the [`pool`] module docs for
//! the lock ordering, versioning, and determinism contract.
//!
//! The device itself is allowed to lie: every physical write seals the
//! page with a checksum ([`page::Page::seal`]), every physical read
//! verifies it, and [`disk::FaultInjector`] replays deterministic media-
//! fault schedules (transient errors, bad sectors, bit flips, torn and
//! dropped writes). The pool's fetch path retries transients, read-
//! repairs detected corruption from the WAL's post-images in durable
//! mode, quarantines sectors that refuse repair, and otherwise surfaces
//! a typed [`disk::IoFault`] — never silent corruption, never a panic on
//! the fallible (`try_*`) entry points. The [`pool::FaultStats`] ledger
//! accounts for all of it.

#![warn(missing_docs)]

pub mod disk;
pub mod page;
pub mod pool;
pub mod wal;

pub use disk::{
    DiskSim, FaultEvent, FaultInjector, FaultKind, IoFault, LatencyEvent, LatencyInjector,
};
pub use page::{Page, PageId, ReadOutcome, PAGE_SIZE, PAGE_WORDS};
pub use pool::{
    default_shard_count, BufferPool, FaultStats, IoStats, LockStats, OptimisticRead, PageLatch,
    PageSnapshot, TRANSIENT_RETRIES,
};
pub use wal::{
    recover, CrashInjector, CrashPoint, Wal, WalRecord, WalRecovery, WalStats, CRASH_SENTINEL,
};
