//! Write-ahead log, fuzzy checkpoints, and crash recovery for the buffer
//! pool, plus the deterministic crash-point injector the durability tests
//! are built on.
//!
//! The log is an append-only byte stream of fixed-stride records (one
//! stride per record type) mirrored onto a **second** [`DiskSim`] region,
//! so log I/O is simulated with exactly the same machinery as data I/O
//! and log-write amplification is measurable. Each record carries a
//! monotonically increasing sequence number and an FNV-1a checksum;
//! recovery stops at the first record that fails validation, which is
//! what makes torn log tails safe.
//!
//! ## The protocol
//!
//! * **Log-before-page.** Every mutation of a data page appends a
//!   full-image [`WalRecord::PageWrite`] (or [`WalRecord::ChainWrite`]
//!   for message-chain sidecar pages) *before* the page can reach the
//!   data disk; the buffer pool calls [`Wal::flush_up_to`] with the
//!   frame's LSN before every physical data write. An LSN is the byte
//!   end-offset of a record in the log stream, so "flushed up to LSN"
//!   has the usual meaning of a durable log prefix.
//! * **First-write pre-images.** The first time a page is dirtied after
//!   a checkpoint, its *current* content is logged as a
//!   [`WalRecord::PreImage`] so recovery can roll uncommitted writes
//!   back (the pool evicts dirty pages freely — a steal policy — so the
//!   data disk may hold uncommitted content at a crash).
//! * **Commit.** Each index-level mutation ends with a
//!   [`WalRecord::Commit`] followed by a full log flush. Recovery
//!   replays exactly the committed prefix: undo all pre-images newer
//!   than the last complete checkpoint, then redo all page images up to
//!   the last durable commit, in log order. Both passes write full page
//!   images, so replaying the tail twice is identical to replaying it
//!   once (idempotence).
//! * **Fuzzy checkpoints.** A checkpoint (always taken at a committed
//!   op boundary) logs [`WalRecord::CkptBegin`], the root/height of
//!   every tree ([`WalRecord::TreeMeta`]), flushes every dirty frame
//!   (log-before-page per frame), then logs [`WalRecord::CkptEnd`] and
//!   flushes the log. A `CkptEnd` is only honored by recovery if it is
//!   durable, which bounds replay at the last *complete* checkpoint.
//!
//! ## Crash points
//!
//! [`CrashInjector`] counts every simulated disk-page write (data and
//! log) while durability is on and can panic — "crash" — exactly at op
//! N, which makes every kill point reproducible. In-memory log appends
//! are *not* injection points: a crash can cut the log at a page
//! boundary mid-flush but never mid-record, so torn records only arise
//! from explicit truncation (tested separately). Each op carries a
//! [`CrashPoint`] label (WAL append flush, data-page flush, checkpoint,
//! chain spill) so the test matrix can cover every category.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::disk::DiskSim;
use crate::page::{Page, PageId, PAGE_SIZE};

/// First byte of every log record; a zeroed tail never looks like one.
pub const WAL_MAGIC: u8 = 0xA5;

const TAG_ALLOC: u8 = 1;
const TAG_PAGE_WRITE: u8 = 2;
const TAG_CHAIN_WRITE: u8 = 3;
const TAG_PRE_IMAGE: u8 = 4;
const TAG_TREE_META: u8 = 5;
const TAG_REKEY: u8 = 6;
const TAG_COMMIT: u8 = 7;
const TAG_CKPT_BEGIN: u8 = 8;
const TAG_CKPT_END: u8 = 9;

/// `[magic][tag]` prefix in front of every record's payload.
const HEADER: usize = 2;
/// `[seq: u64][crc: u64]` trailer behind every record's payload.
const TRAILER: usize = 16;

const fn stride_of(tag: u8) -> Option<usize> {
    match tag {
        TAG_ALLOC => Some(HEADER + 4 + TRAILER),
        TAG_PAGE_WRITE | TAG_CHAIN_WRITE | TAG_PRE_IMAGE => Some(HEADER + 4 + PAGE_SIZE + TRAILER),
        TAG_TREE_META => Some(HEADER + 12 + TRAILER),
        TAG_REKEY => Some(HEADER + 36 + TRAILER),
        TAG_COMMIT => Some(HEADER + 8 + TRAILER),
        TAG_CKPT_BEGIN => Some(HEADER + TRAILER),
        TAG_CKPT_END => Some(HEADER + 8 + TRAILER),
        _ => None,
    }
}

/// FNV-1a over `bytes` — the record checksum. Hand-rolled (no external
/// crates); collisions are irrelevant here, torn-tail *detection* is the
/// only job.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One log record. Every variant encodes to a fixed stride for its tag:
/// `[magic][tag][payload][seq: u64][crc: u64]`, checksum over everything
/// before the crc, all integers little-endian.
#[derive(Clone)]
pub enum WalRecord {
    /// A fresh page was allocated on the data disk.
    Alloc {
        /// The allocated page.
        pid: PageId,
    },
    /// Full post-image of a B+-tree node page write.
    PageWrite {
        /// The written page.
        pid: PageId,
        /// Its complete content after the write.
        image: Box<Page>,
    },
    /// Full post-image of a message-chain sidecar page write (same
    /// stride as [`WalRecord::PageWrite`]; the distinct tag lets
    /// recovery and the ledger tell buffered-write traffic apart).
    ChainWrite {
        /// The written chain page.
        pid: PageId,
        /// Its complete content after the write.
        image: Box<Page>,
    },
    /// Full content of a page *before* its first write since the last
    /// checkpoint — the undo record.
    PreImage {
        /// The page about to be dirtied.
        pid: PageId,
        /// Its content as of the last checkpoint.
        image: Box<Page>,
    },
    /// Root pointer and height of one tree (logged on root change and at
    /// every checkpoint); recovery reattaches trees from the newest
    /// committed one per tree id.
    TreeMeta {
        /// Index-assigned tree (shard) id.
        tree: u32,
        /// Root page of the tree.
        root: PageId,
        /// Height of the tree (1 = root is a leaf).
        height: u32,
    },
    /// Logical annotation of a key change (the physical page images
    /// already carry the data; recovery tallies these for diagnostics).
    Rekey {
        /// Tree the re-key happened in.
        tree: u32,
        /// Key being retired.
        old: u128,
        /// Key replacing it.
        new: u128,
    },
    /// One index-level mutation completed; `ops` is the cumulative count.
    Commit {
        /// Total committed mutations including this one.
        ops: u64,
    },
    /// A fuzzy checkpoint started.
    CkptBegin,
    /// A fuzzy checkpoint finished flushing; only honored by recovery
    /// once durable.
    CkptEnd {
        /// Sequence number of the matching [`WalRecord::CkptBegin`].
        begin_seq: u64,
    },
}

impl std::fmt::Debug for WalRecord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalRecord::Alloc { pid } => write!(f, "Alloc({})", pid.0),
            WalRecord::PageWrite { pid, .. } => write!(f, "PageWrite({})", pid.0),
            WalRecord::ChainWrite { pid, .. } => write!(f, "ChainWrite({})", pid.0),
            WalRecord::PreImage { pid, .. } => write!(f, "PreImage({})", pid.0),
            WalRecord::TreeMeta { tree, root, height } => {
                write!(f, "TreeMeta(tree={tree}, root={}, height={height})", root.0)
            }
            WalRecord::Rekey { tree, old, new } => {
                write!(f, "Rekey(tree={tree}, {old:#x} -> {new:#x})")
            }
            WalRecord::Commit { ops } => write!(f, "Commit({ops})"),
            WalRecord::CkptBegin => write!(f, "CkptBegin"),
            WalRecord::CkptEnd { begin_seq } => write!(f, "CkptEnd(begin={begin_seq})"),
        }
    }
}

impl WalRecord {
    fn tag(&self) -> u8 {
        match self {
            WalRecord::Alloc { .. } => TAG_ALLOC,
            WalRecord::PageWrite { .. } => TAG_PAGE_WRITE,
            WalRecord::ChainWrite { .. } => TAG_CHAIN_WRITE,
            WalRecord::PreImage { .. } => TAG_PRE_IMAGE,
            WalRecord::TreeMeta { .. } => TAG_TREE_META,
            WalRecord::Rekey { .. } => TAG_REKEY,
            WalRecord::Commit { .. } => TAG_COMMIT,
            WalRecord::CkptBegin => TAG_CKPT_BEGIN,
            WalRecord::CkptEnd { .. } => TAG_CKPT_END,
        }
    }

    /// Serialize with sequence number `seq` into `out`. Returns the
    /// record's stride.
    pub fn encode_into(&self, seq: u64, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        out.push(WAL_MAGIC);
        out.push(self.tag());
        match self {
            WalRecord::Alloc { pid } => out.extend_from_slice(&pid.0.to_le_bytes()),
            WalRecord::PageWrite { pid, image }
            | WalRecord::ChainWrite { pid, image }
            | WalRecord::PreImage { pid, image } => {
                out.extend_from_slice(&pid.0.to_le_bytes());
                out.extend_from_slice(image.bytes(0, PAGE_SIZE));
            }
            WalRecord::TreeMeta { tree, root, height } => {
                out.extend_from_slice(&tree.to_le_bytes());
                out.extend_from_slice(&root.0.to_le_bytes());
                out.extend_from_slice(&height.to_le_bytes());
            }
            WalRecord::Rekey { tree, old, new } => {
                out.extend_from_slice(&tree.to_le_bytes());
                out.extend_from_slice(&old.to_le_bytes());
                out.extend_from_slice(&new.to_le_bytes());
            }
            WalRecord::Commit { ops } => out.extend_from_slice(&ops.to_le_bytes()),
            WalRecord::CkptBegin => {}
            WalRecord::CkptEnd { begin_seq } => out.extend_from_slice(&begin_seq.to_le_bytes()),
        }
        out.extend_from_slice(&seq.to_le_bytes());
        let crc = fnv1a(&out[start..]);
        out.extend_from_slice(&crc.to_le_bytes());
        debug_assert_eq!(out.len() - start, stride_of(self.tag()).unwrap());
        out.len() - start
    }

    /// Serialize with sequence number `seq` into a fresh buffer.
    pub fn encode(&self, seq: u64) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(seq, &mut out);
        out
    }

    /// Parse the record at the front of `buf`. Returns the record, its
    /// sequence number, and its stride — or `None` if the bytes do not
    /// form a complete record with a valid checksum (wrong magic,
    /// unknown tag, short buffer, or crc mismatch).
    pub fn decode(buf: &[u8]) -> Option<(WalRecord, u64, usize)> {
        if buf.len() < HEADER || buf[0] != WAL_MAGIC {
            return None;
        }
        let tag = buf[1];
        let stride = stride_of(tag)?;
        if buf.len() < stride {
            return None;
        }
        let crc = u64::from_le_bytes(buf[stride - 8..stride].try_into().unwrap());
        if fnv1a(&buf[..stride - 8]) != crc {
            return None;
        }
        let seq = u64::from_le_bytes(buf[stride - 16..stride - 8].try_into().unwrap());
        let u32_at = |o: usize| u32::from_le_bytes(buf[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(buf[o..o + 8].try_into().unwrap());
        let u128_at = |o: usize| u128::from_le_bytes(buf[o..o + 16].try_into().unwrap());
        let image_at = |o: usize| {
            let mut p = Box::new(Page::new());
            p.bytes_mut(0, PAGE_SIZE).copy_from_slice(&buf[o..o + PAGE_SIZE]);
            p
        };
        let rec = match tag {
            TAG_ALLOC => WalRecord::Alloc { pid: PageId(u32_at(2)) },
            TAG_PAGE_WRITE => WalRecord::PageWrite { pid: PageId(u32_at(2)), image: image_at(6) },
            TAG_CHAIN_WRITE => WalRecord::ChainWrite { pid: PageId(u32_at(2)), image: image_at(6) },
            TAG_PRE_IMAGE => WalRecord::PreImage { pid: PageId(u32_at(2)), image: image_at(6) },
            TAG_TREE_META => {
                WalRecord::TreeMeta { tree: u32_at(2), root: PageId(u32_at(6)), height: u32_at(10) }
            }
            TAG_REKEY => WalRecord::Rekey { tree: u32_at(2), old: u128_at(6), new: u128_at(22) },
            TAG_COMMIT => WalRecord::Commit { ops: u64_at(2) },
            TAG_CKPT_BEGIN => WalRecord::CkptBegin,
            TAG_CKPT_END => WalRecord::CkptEnd { begin_seq: u64_at(2) },
            _ => unreachable!("stride_of filtered unknown tags"),
        };
        Some((rec, seq, stride))
    }
}

/// Where in the storage stack a counted disk op happened — the label of
/// one crash-injection point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// A log-page write forced by an append/commit flush.
    WalWrite,
    /// A data-page write (dirty eviction or flush).
    PageFlush,
    /// Any disk write performed inside a checkpoint.
    Checkpoint,
    /// Any disk write performed inside a message-chain spill/flush.
    ChainSpill,
}

/// Panic-message marker of an injected crash; the harness matches on it
/// to tell injected crashes from real bugs.
pub const CRASH_SENTINEL: &str = "crash-injector";

/// Deterministic crash-point injector: counts every simulated disk-page
/// write while durability is on, records a [`CrashPoint`] label trace in
/// probe mode, and panics exactly at the armed op index in crash mode.
///
/// The workload between two counted ops is deterministic, so "crash at
/// op N" reproduces the same machine state every run.
#[derive(Default)]
pub struct CrashInjector {
    /// Op index to crash at; `u64::MAX` = disarmed.
    armed: AtomicU64,
    /// Ops counted so far.
    counter: AtomicU64,
    /// Probe mode: record labels instead of crashing.
    probing: AtomicBool,
    trace: Mutex<Vec<CrashPoint>>,
}

impl CrashInjector {
    /// A disarmed injector (counts nothing until armed or probing).
    pub fn new() -> Self {
        CrashInjector {
            armed: AtomicU64::new(u64::MAX),
            counter: AtomicU64::new(0),
            probing: AtomicBool::new(false),
            trace: Mutex::new(Vec::new()),
        }
    }

    /// Crash (panic with [`CRASH_SENTINEL`]) when op `n` is reached.
    pub fn arm(&self, n: u64) {
        self.armed.store(n, Ordering::SeqCst);
    }

    /// Stop crashing.
    pub fn disarm(&self) {
        self.armed.store(u64::MAX, Ordering::SeqCst);
    }

    /// Toggle probe mode: ops are counted and labeled but never crash.
    pub fn set_probing(&self, on: bool) {
        self.probing.store(on, Ordering::SeqCst);
    }

    /// Reset the op counter and clear the recorded trace.
    pub fn reset(&self) {
        self.counter.store(0, Ordering::SeqCst);
        self.trace.lock().clear();
    }

    /// Ops counted since the last [`CrashInjector::reset`].
    pub fn ops_seen(&self) -> u64 {
        self.counter.load(Ordering::SeqCst)
    }

    /// Take the probe-mode label trace (op index -> label).
    pub fn take_trace(&self) -> Vec<CrashPoint> {
        std::mem::take(&mut self.trace.lock())
    }

    /// Count one disk op with label `point`; panics if this is the armed
    /// op (before the write takes effect — op N never completes).
    pub fn hit(&self, point: CrashPoint) {
        let armed = self.armed.load(Ordering::Relaxed);
        if armed == u64::MAX && !self.probing.load(Ordering::Relaxed) {
            return;
        }
        let n = self.counter.fetch_add(1, Ordering::SeqCst);
        if self.probing.load(Ordering::Relaxed) {
            self.trace.lock().push(point);
        }
        if n == armed {
            panic!("{CRASH_SENTINEL}: injected crash at disk op {n} ({point:?})");
        }
    }
}

/// Deterministic counters of log activity (all exact for a fixed seed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended.
    pub records: u64,
    /// Bytes appended.
    pub bytes: u64,
    /// Log pages physically written (a partially filled tail page is
    /// rewritten by each flush that extends it — real-log write
    /// amplification, measured, not hidden).
    pub page_writes: u64,
    /// Flush calls that wrote at least one page.
    pub flushes: u64,
}

/// Sentinel offset in the image index meaning "allocated and never
/// rewritten: the image is a zeroed page".
const IMAGE_ZEROED: usize = usize::MAX;

/// The append-only write-ahead log: an in-memory record stream plus the
/// [`DiskSim`] log region holding its durable prefix.
pub struct Wal {
    disk: DiskSim,
    /// The full log stream; appends land here first.
    buf: Vec<u8>,
    /// Length of the prefix forced to the log disk.
    durable_bytes: usize,
    next_seq: u64,
    /// Pages whose pre-image is already logged this checkpoint interval.
    preimaged: HashSet<u32>,
    /// Byte offset (in `buf`) of the newest full post-image per page —
    /// the read-repair index. [`IMAGE_ZEROED`] marks a page whose newest
    /// state-defining record is its allocation (content = zeroed page).
    /// Pre-images never feed this index: they are *older* content by
    /// definition.
    images: HashMap<u32, usize>,
    stats: WalStats,
}

impl Default for Wal {
    fn default() -> Self {
        Self::new()
    }
}

impl Wal {
    /// An empty log (sequence numbers start at 1).
    pub fn new() -> Self {
        Wal {
            disk: DiskSim::new(),
            buf: Vec::new(),
            durable_bytes: 0,
            next_seq: 1,
            preimaged: HashSet::new(),
            images: HashMap::new(),
            stats: WalStats::default(),
        }
    }

    /// Append `rec` with the next sequence number; returns the record's
    /// LSN (its byte end-offset in the stream). The append is in-memory
    /// only — durability requires a flush.
    pub fn append(&mut self, rec: &WalRecord) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let start = self.buf.len();
        let stride = rec.encode_into(seq, &mut self.buf);
        match rec {
            WalRecord::Alloc { pid } => {
                self.images.insert(pid.0, IMAGE_ZEROED);
            }
            WalRecord::PageWrite { pid, .. } | WalRecord::ChainWrite { pid, .. } => {
                self.images.insert(pid.0, start);
            }
            _ => {}
        }
        self.stats.records += 1;
        self.stats.bytes += stride as u64;
        self.buf.len() as u64
    }

    /// The newest logged full content of `pid` — the read-repair source.
    ///
    /// Every durable-mode page write logs its complete post-image before
    /// the page can reach the data disk, so for any page that is **not**
    /// dirty in the pool, the newest [`WalRecord::PageWrite`] /
    /// [`WalRecord::ChainWrite`] (or a zeroed page, if the newest record
    /// is the allocation) is exactly what the data disk is supposed to
    /// hold. `None` means the page was never logged — enrolled into
    /// durability but not written since — and cannot be repaired from
    /// this log.
    pub fn latest_image(&self, pid: PageId) -> Option<Page> {
        match *self.images.get(&pid.0)? {
            IMAGE_ZEROED => Some(Page::new()),
            off => match WalRecord::decode(&self.buf[off..]) {
                Some((WalRecord::PageWrite { image, .. }, _, _))
                | Some((WalRecord::ChainWrite { image, .. }, _, _)) => Some(*image),
                _ => unreachable!("image index points at a post-image record"),
            },
        }
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// LSN of the stream end (= the last appended record).
    pub fn end_lsn(&self) -> u64 {
        self.buf.len() as u64
    }

    /// LSN up to which the log is durable on the log disk.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_bytes as u64
    }

    /// Whether `pid`'s pre-image is already logged this interval.
    pub fn is_preimaged(&self, pid: PageId) -> bool {
        self.preimaged.contains(&pid.0)
    }

    /// Mark `pid` as covered by a pre-image (or as never needing one —
    /// pages allocated after the last checkpoint have no committed
    /// content to restore).
    pub fn mark_preimaged(&mut self, pid: PageId) {
        self.preimaged.insert(pid.0);
    }

    /// Forget all pre-image marks (a checkpoint completed: the next
    /// write of any page must log a fresh pre-image).
    pub fn clear_preimaged(&mut self) {
        self.preimaged.clear();
    }

    /// Force the log durable up to `lsn`, writing every log page from
    /// the durable frontier through the page covering `lsn`. `hit` is
    /// invoked once *before* each page write (the crash-injection hook).
    pub fn flush_up_to(&mut self, lsn: u64, hit: &mut dyn FnMut()) {
        let target = (lsn as usize).min(self.buf.len());
        if target <= self.durable_bytes {
            return;
        }
        let first = self.durable_bytes / PAGE_SIZE;
        let last = (target - 1) / PAGE_SIZE;
        for p in first..=last {
            while self.disk.num_pages() <= p {
                self.disk.allocate();
            }
            let start = p * PAGE_SIZE;
            let end = (start + PAGE_SIZE).min(self.buf.len());
            let mut page = Page::new();
            page.bytes_mut(0, end - start).copy_from_slice(&self.buf[start..end]);
            hit();
            self.disk.write(PageId(p as u32), &page);
            self.stats.page_writes += 1;
        }
        self.durable_bytes = target;
        self.stats.flushes += 1;
    }

    /// Force the entire log durable.
    pub fn flush(&mut self, hit: &mut dyn FnMut()) {
        self.flush_up_to(self.buf.len() as u64, hit);
    }

    /// Log-activity counters.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// The simulated log region (harvested by the crash harness).
    pub fn disk(&self) -> &DiskSim {
        &self.disk
    }

    /// Rebuild a live log over a recovered log region: the valid prefix
    /// identified by `rec` is kept (and the torn tail, if any, zeroed so
    /// it can never resurface), sequence numbers continue after the last
    /// valid record, and no page is considered pre-imaged (recovery is
    /// followed by a fresh checkpoint).
    pub fn resume(log: DiskSim, rec: &WalRecovery) -> Wal {
        let mut buf = read_stream(&log);
        buf.truncate(rec.valid_bytes as usize);
        // Rebuild the read-repair image index from the valid prefix.
        let mut images = HashMap::new();
        let mut off = 0usize;
        while off < buf.len() {
            match WalRecord::decode(&buf[off..]) {
                Some((found, _, stride)) => {
                    match found {
                        WalRecord::Alloc { pid } => {
                            images.insert(pid.0, IMAGE_ZEROED);
                        }
                        WalRecord::PageWrite { pid, .. } | WalRecord::ChainWrite { pid, .. } => {
                            images.insert(pid.0, off);
                        }
                        _ => {}
                    }
                    off += stride;
                }
                None => break,
            }
        }
        let mut wal = Wal {
            disk: log,
            buf,
            durable_bytes: rec.valid_bytes as usize,
            next_seq: rec.next_seq,
            preimaged: HashSet::new(),
            images,
            stats: WalStats::default(),
        };
        // Zero the log disk beyond the valid prefix (a torn record must
        // not survive next to freshly appended ones).
        let valid = rec.valid_bytes as usize;
        if valid < wal.disk.num_pages() * PAGE_SIZE {
            let first = valid / PAGE_SIZE;
            for p in first..wal.disk.num_pages() {
                let start = p * PAGE_SIZE;
                let keep = valid.saturating_sub(start).min(PAGE_SIZE);
                let mut page = Page::new();
                if keep > 0 {
                    page.bytes_mut(0, keep).copy_from_slice(&wal.buf[start..start + keep]);
                }
                wal.disk.write(PageId(p as u32), &page);
            }
        }
        wal
    }
}

/// Concatenate the log region's pages back into one byte stream.
fn read_stream(log: &DiskSim) -> Vec<u8> {
    let mut buf = Vec::with_capacity(log.num_pages() * PAGE_SIZE);
    for p in 0..log.num_pages() {
        let page = log
            .peek(PageId(p as u32))
            .expect("log region pages are enumerated from num_pages, hence allocated");
        buf.extend_from_slice(page.bytes(0, PAGE_SIZE));
    }
    buf
}

/// Everything [`recover`] learned and did, returned to the caller so the
/// index layer can reattach its trees and the harness can assert on it.
#[derive(Debug, Clone)]
pub struct WalRecovery {
    /// Cumulative mutation count of the last durable commit (0 = none).
    pub commits: u64,
    /// Sequence number of the last durable commit (0 = none).
    pub last_commit_seq: u64,
    /// Sequence number of the last durable complete checkpoint's
    /// [`WalRecord::CkptEnd`] (0 = none).
    pub checkpoint_seq: u64,
    /// Newest committed `(tree, root, height)` per tree id, ascending.
    pub tree_meta: Vec<(u32, PageId, u32)>,
    /// Committed [`WalRecord::Rekey`] annotations seen.
    pub rekeys_noted: u64,
    /// Valid records scanned (before the torn tail, if any).
    pub records_scanned: u64,
    /// Redo records applied to the data disk.
    pub records_replayed: u64,
    /// Undo pre-images applied to the data disk.
    pub preimages_applied: u64,
    /// Physical data-disk writes recovery performed (undo + redo).
    pub data_writes: u64,
    /// Whether the log ended in an incomplete/corrupt record.
    pub torn_tail: bool,
    /// Byte length of the valid log prefix.
    pub valid_bytes: u64,
    /// Sequence number the resumed log should continue from.
    pub next_seq: u64,
}

/// Replay the log region `log` against the data disk `data`, restoring
/// exactly the state as of the last durable commit.
///
/// The scan validates magic, tag, checksum, and sequence continuity of
/// every record and stops cleanly at the first failure (torn tail) or at
/// the zeroed end of the stream. The undo pass applies every pre-image
/// newer than the last complete checkpoint; the redo pass then applies
/// every allocation and page image up to the last durable commit, in log
/// order. Both passes write full page images, so running `recover` twice
/// over the same inputs leaves `data` byte-identical to running it once.
pub fn recover(data: &mut DiskSim, log: &DiskSim) -> WalRecovery {
    let stream = read_stream(log);
    let mut records: Vec<(WalRecord, u64)> = Vec::new();
    let mut off = 0usize;
    let mut torn = false;
    let mut expect_seq = 1u64;
    while off < stream.len() {
        if stream[off] != WAL_MAGIC {
            // A zeroed remainder is the clean end of the stream; anything
            // else is a torn/corrupt tail.
            torn = stream[off..].iter().any(|&b| b != 0);
            break;
        }
        match WalRecord::decode(&stream[off..]) {
            Some((rec, seq, stride)) if seq == expect_seq => {
                records.push((rec, seq));
                expect_seq += 1;
                off += stride;
            }
            _ => {
                torn = true;
                break;
            }
        }
    }
    let valid_bytes = off as u64;

    let mut last_commit_seq = 0u64;
    let mut commits = 0u64;
    let mut checkpoint_seq = 0u64;
    for (rec, seq) in &records {
        match rec {
            WalRecord::Commit { ops } => {
                last_commit_seq = *seq;
                commits = *ops;
            }
            WalRecord::CkptEnd { .. } => checkpoint_seq = *seq,
            _ => {}
        }
    }
    // A checkpoint only runs at a committed op boundary, so everything up
    // to a durable CkptEnd is committed state even without a later Commit.
    let committed_seq = last_commit_seq.max(checkpoint_seq);

    let writes_before = data.physical_writes();
    let ensure = |data: &mut DiskSim, pid: PageId| {
        while data.num_pages() <= pid.0 as usize {
            data.allocate();
        }
    };

    // Undo: roll every page first-dirtied after the last complete
    // checkpoint back to its checkpointed content (the data disk may hold
    // uncommitted images — the pool steals dirty frames).
    let mut preimages_applied = 0u64;
    for (rec, seq) in &records {
        if let WalRecord::PreImage { pid, image } = rec {
            if *seq > checkpoint_seq {
                ensure(data, *pid);
                data.write(*pid, image);
                preimages_applied += 1;
            }
        }
    }

    // Redo: reapply the committed tail in log order.
    let mut records_replayed = 0u64;
    let mut rekeys_noted = 0u64;
    let mut meta: HashMap<u32, (PageId, u32)> = HashMap::new();
    for (rec, seq) in &records {
        match rec {
            WalRecord::Alloc { pid } if *seq > checkpoint_seq && *seq <= committed_seq => {
                ensure(data, *pid);
                records_replayed += 1;
            }
            WalRecord::PageWrite { pid, image } | WalRecord::ChainWrite { pid, image }
                if *seq > checkpoint_seq && *seq <= committed_seq =>
            {
                ensure(data, *pid);
                data.write(*pid, image);
                records_replayed += 1;
            }
            WalRecord::Rekey { .. } if *seq <= committed_seq => rekeys_noted += 1,
            WalRecord::TreeMeta { tree, root, height } if *seq <= committed_seq => {
                meta.insert(*tree, (*root, *height));
            }
            _ => {}
        }
    }

    let mut tree_meta: Vec<(u32, PageId, u32)> =
        meta.into_iter().map(|(t, (r, h))| (t, r, h)).collect();
    tree_meta.sort_unstable_by_key(|&(t, _, _)| t);

    WalRecovery {
        commits,
        last_commit_seq,
        checkpoint_seq,
        tree_meta,
        rekeys_noted,
        records_scanned: records.len() as u64,
        records_replayed,
        preimages_applied,
        data_writes: data.physical_writes() - writes_before,
        torn_tail: torn,
        valid_bytes,
        next_seq: expect_seq,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_with(v: u64) -> Box<Page> {
        let mut p = Box::new(Page::new());
        p.put_u64(0, v);
        p
    }

    #[test]
    fn records_round_trip_bytewise() {
        let recs = vec![
            WalRecord::Alloc { pid: PageId(7) },
            WalRecord::PageWrite { pid: PageId(3), image: page_with(0xDEAD) },
            WalRecord::ChainWrite { pid: PageId(4), image: page_with(0xBEEF) },
            WalRecord::PreImage { pid: PageId(3), image: page_with(0xF00D) },
            WalRecord::TreeMeta { tree: 2, root: PageId(9), height: 3 },
            WalRecord::Rekey { tree: 1, old: 42, new: u128::MAX / 3 },
            WalRecord::Commit { ops: 17 },
            WalRecord::CkptBegin,
            WalRecord::CkptEnd { begin_seq: 5 },
        ];
        for (i, rec) in recs.iter().enumerate() {
            let seq = i as u64 + 1;
            let bytes = rec.encode(seq);
            let (back, got_seq, stride) = WalRecord::decode(&bytes).expect("decodes");
            assert_eq!(got_seq, seq);
            assert_eq!(stride, bytes.len());
            assert_eq!(back.encode(seq), bytes, "re-encode must be identical");
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = WalRecord::Commit { ops: 9 }.encode(1);
        assert!(WalRecord::decode(&bytes).is_some());
        // Short buffer.
        assert!(WalRecord::decode(&bytes[..bytes.len() - 1]).is_none());
        // Wrong magic.
        let mut bad = bytes.clone();
        bad[0] = 0;
        assert!(WalRecord::decode(&bad).is_none());
        // Flipped payload bit fails the checksum.
        let mut bad = bytes.clone();
        bad[3] ^= 1;
        assert!(WalRecord::decode(&bad).is_none());
        // Unknown tag.
        let mut bad = bytes;
        bad[1] = 0xEE;
        assert!(WalRecord::decode(&bad).is_none());
    }

    #[test]
    fn flush_makes_prefix_durable_and_replayable() {
        let mut wal = Wal::new();
        let mut data = DiskSim::new();
        let pid = data.allocate();
        wal.append(&WalRecord::PageWrite { pid, image: page_with(11) });
        wal.append(&WalRecord::Commit { ops: 1 });
        wal.flush(&mut || {});
        // A second committed write that never reaches the log disk.
        wal.append(&WalRecord::PageWrite { pid, image: page_with(22) });
        wal.append(&WalRecord::Commit { ops: 2 });

        let rec = recover(&mut data, wal.disk());
        assert_eq!(rec.commits, 1, "unflushed tail must not replay");
        assert!(!rec.torn_tail);
        assert_eq!(data.peek(pid).unwrap().get_u64(0), 11);
    }

    #[test]
    fn recovery_is_idempotent() {
        let mut wal = Wal::new();
        let mut data = DiskSim::new();
        let a = data.allocate();
        wal.append(&WalRecord::PreImage { pid: a, image: page_with(0) });
        wal.append(&WalRecord::PageWrite { pid: a, image: page_with(5) });
        wal.append(&WalRecord::Commit { ops: 1 });
        wal.flush(&mut || {});

        let mut once = data.clone();
        let r1 = recover(&mut once, wal.disk());
        let mut twice = data.clone();
        recover(&mut twice, wal.disk());
        let r2 = recover(&mut twice, wal.disk());
        assert_eq!(r1.commits, r2.commits);
        for p in 0..once.num_pages() {
            let pid = PageId(p as u32);
            assert_eq!(
                once.peek(pid).unwrap().bytes(0, PAGE_SIZE),
                twice.peek(pid).unwrap().bytes(0, PAGE_SIZE)
            );
        }
    }

    #[test]
    fn latest_image_tracks_the_newest_post_image() {
        let mut wal = Wal::new();
        assert!(wal.latest_image(PageId(3)).is_none(), "never logged: unrepairable");

        wal.append(&WalRecord::Alloc { pid: PageId(3) });
        let img = wal.latest_image(PageId(3)).expect("alloc implies zeroed image");
        assert_eq!(img.bytes(0, PAGE_SIZE), Page::new().bytes(0, PAGE_SIZE));

        wal.append(&WalRecord::PageWrite { pid: PageId(3), image: page_with(7) });
        wal.append(&WalRecord::PreImage { pid: PageId(3), image: page_with(999) });
        wal.append(&WalRecord::PageWrite { pid: PageId(3), image: page_with(8) });
        wal.append(&WalRecord::ChainWrite { pid: PageId(4), image: page_with(44) });
        assert_eq!(wal.latest_image(PageId(3)).unwrap().get_u64(0), 8);
        assert_eq!(wal.latest_image(PageId(4)).unwrap().get_u64(0), 44);

        // The index survives a flush + resume round trip.
        wal.flush(&mut || {});
        let mut scratch = DiskSim::new();
        let rec = recover(&mut scratch, wal.disk());
        let resumed = Wal::resume(wal.disk().clone(), &rec);
        assert_eq!(resumed.latest_image(PageId(3)).unwrap().get_u64(0), 8);
        assert_eq!(resumed.latest_image(PageId(4)).unwrap().get_u64(0), 44);
        assert!(resumed.latest_image(PageId(9)).is_none());
    }

    #[test]
    fn injector_probe_and_crash_are_aligned() {
        let inj = CrashInjector::new();
        inj.set_probing(true);
        inj.hit(CrashPoint::WalWrite);
        inj.hit(CrashPoint::PageFlush);
        inj.hit(CrashPoint::Checkpoint);
        inj.set_probing(false);
        assert_eq!(
            inj.take_trace(),
            vec![CrashPoint::WalWrite, CrashPoint::PageFlush, CrashPoint::Checkpoint]
        );
        inj.reset();
        inj.arm(1);
        inj.hit(CrashPoint::WalWrite);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            inj.hit(CrashPoint::PageFlush)
        }))
        .expect_err("armed op must crash");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains(CRASH_SENTINEL));
        inj.disarm();
        inj.hit(CrashPoint::PageFlush); // disarmed: no crash
    }
}
