//! LRU buffer pool in front of the simulated disk.
//!
//! The pool is the unit both indexes talk to. It uses interior mutability
//! (a `parking_lot::Mutex`) so that *queries* can run against `&Index` even
//! though every page touch updates LRU recency and counters — matching the
//! usual database architecture where the buffer manager is shared mutable
//! state.

use std::collections::HashMap;

use parking_lot::Mutex;

use crate::disk::DiskSim;
use crate::page::{Page, PageId};

/// I/O counters accumulated by a [`BufferPool`].
///
/// `physical_reads` is the paper's "I/O cost" for read-only workloads;
/// queries report `physical_reads + physical_writes` (writes only occur for
/// dirty evictions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Buffer misses that had to go to disk.
    pub physical_reads: u64,
    /// Dirty pages written back on eviction or flush.
    pub physical_writes: u64,
    /// All page requests, hits included.
    pub logical_reads: u64,
}

impl IoStats {
    /// Total physical page accesses — the paper's I/O cost metric.
    pub fn total_io(&self) -> u64 {
        self.physical_reads + self.physical_writes
    }

    /// Buffer hit ratio over the logical accesses seen so far.
    pub fn hit_ratio(&self) -> f64 {
        if self.logical_reads == 0 {
            return 0.0;
        }
        1.0 - self.physical_reads as f64 / self.logical_reads as f64
    }
}

struct Frame {
    page: Page,
    dirty: bool,
    last_used: u64,
}

/// The shared buffer manager: an LRU page cache over a [`DiskSim`].
pub struct BufferPool {
    inner: Mutex<Inner>,
}

struct Inner {
    disk: DiskSim,
    frames: HashMap<PageId, Frame>,
    capacity: usize,
    tick: u64,
    stats: IoStats,
}

impl Inner {
    fn fetch(&mut self, pid: PageId) -> &mut Frame {
        self.tick += 1;
        self.stats.logical_reads += 1;

        if !self.frames.contains_key(&pid) {
            if self.frames.len() >= self.capacity {
                self.evict_lru();
            }
            self.stats.physical_reads += 1;
            let page = self.disk.read(pid);
            self.frames.insert(pid, Frame { page, dirty: false, last_used: 0 });
        }
        let tick = self.tick;
        let f = self.frames.get_mut(&pid).expect("frame resident after fetch");
        f.last_used = tick;
        f
    }

    fn evict_lru(&mut self) {
        let victim = self
            .frames
            .iter()
            .min_by_key(|(_, f)| f.last_used)
            .map(|(pid, _)| *pid)
            .expect("evict called on empty pool");
        let frame = self.frames.remove(&victim).unwrap();
        if frame.dirty {
            self.stats.physical_writes += 1;
            self.disk.write(victim, &frame.page);
        }
    }
}

impl BufferPool {
    /// A pool holding at most `capacity` pages (the paper uses 50).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "buffer pool needs at least one frame");
        BufferPool {
            inner: Mutex::new(Inner {
                disk: DiskSim::new(),
                frames: HashMap::with_capacity(capacity + 1),
                capacity,
                tick: 0,
                stats: IoStats::default(),
            }),
        }
    }

    /// Allocate a fresh zeroed page; it becomes resident and dirty so the
    /// first write-back is counted like any other.
    pub fn allocate(&self) -> PageId {
        let mut g = self.inner.lock();
        let pid = g.disk.allocate();
        if g.frames.len() >= g.capacity {
            g.evict_lru();
        }
        let tick = g.tick + 1;
        g.tick = tick;
        g.frames.insert(pid, Frame { page: Page::new(), dirty: true, last_used: tick });
        pid
    }

    /// Read access to a page through the buffer.
    pub fn read<R>(&self, pid: PageId, f: impl FnOnce(&Page) -> R) -> R {
        let mut g = self.inner.lock();
        let frame = g.fetch(pid);
        f(&frame.page)
    }

    /// Write access to a page through the buffer; marks the frame dirty.
    pub fn write<R>(&self, pid: PageId, f: impl FnOnce(&mut Page) -> R) -> R {
        let mut g = self.inner.lock();
        let frame = g.fetch(pid);
        frame.dirty = true;
        f(&mut frame.page)
    }

    /// Write every dirty frame back to disk (counted), keeping residency.
    pub fn flush_all(&self) {
        let g = &mut *self.inner.lock();
        for (pid, frame) in g.frames.iter_mut() {
            if frame.dirty {
                g.stats.physical_writes += 1;
                g.disk.write(*pid, &frame.page);
                frame.dirty = false;
            }
        }
    }

    /// Drop every frame (writing back dirty ones). Used by experiments to
    /// cold-start the buffer between measurement rounds.
    pub fn clear(&self) {
        let g = &mut *self.inner.lock();
        let pids: Vec<PageId> = g.frames.keys().copied().collect();
        for pid in pids {
            let frame = g.frames.remove(&pid).unwrap();
            if frame.dirty {
                g.stats.physical_writes += 1;
                g.disk.write(pid, &frame.page);
            }
        }
    }

    pub fn stats(&self) -> IoStats {
        self.inner.lock().stats
    }

    pub fn reset_stats(&self) {
        self.inner.lock().stats = IoStats::default();
    }

    pub fn capacity(&self) -> usize {
        self.inner.lock().capacity
    }

    pub fn num_disk_pages(&self) -> usize {
        self.inner.lock().disk.num_pages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_are_free_misses_cost_one_read() {
        let pool = BufferPool::new(4);
        let pid = pool.allocate();
        pool.reset_stats();
        for _ in 0..10 {
            pool.read(pid, |p| p.get_u64(0));
        }
        let s = pool.stats();
        assert_eq!(s.physical_reads, 0, "resident page never touches disk");
        assert_eq!(s.logical_reads, 10);
        assert_eq!(s.hit_ratio(), 1.0);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        let a = pool.allocate();
        let b = pool.allocate(); // pool now holds {a, b}
        pool.read(a, |_| ()); // a is now more recent than b
        let c = pool.allocate(); // must evict b
        pool.reset_stats();
        pool.read(a, |_| ());
        pool.read(c, |_| ());
        assert_eq!(pool.stats().physical_reads, 0, "a and c stayed resident");
        pool.read(b, |_| ());
        assert_eq!(pool.stats().physical_reads, 1, "b was the LRU victim");
    }

    #[test]
    fn dirty_eviction_writes_back_and_preserves_data() {
        let pool = BufferPool::new(1);
        let a = pool.allocate();
        pool.write(a, |p| p.put_u64(0, 77));
        let _b = pool.allocate(); // evicts dirty a -> physical write
        assert!(pool.stats().physical_writes >= 1);
        // Reading a again must see the written value (via disk).
        assert_eq!(pool.read(a, |p| p.get_u64(0)), 77);
    }

    #[test]
    fn flush_and_clear_round_trip() {
        let pool = BufferPool::new(8);
        let pids: Vec<PageId> = (0..5).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u32(0, i as u32));
        }
        pool.flush_all();
        pool.clear();
        pool.reset_stats();
        for (i, pid) in pids.iter().enumerate() {
            assert_eq!(pool.read(*pid, |p| p.get_u32(0)), i as u32);
        }
        // All 5 were cold: exactly 5 physical reads.
        assert_eq!(pool.stats().physical_reads, 5);
    }

    #[test]
    fn total_io_combines_reads_and_writes() {
        let s = IoStats { physical_reads: 3, physical_writes: 2, logical_reads: 10 };
        assert_eq!(s.total_io(), 5);
        assert!((s.hit_ratio() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn workload_larger_than_pool_thrashes() {
        let pool = BufferPool::new(4);
        let pids: Vec<PageId> = (0..16).map(|_| pool.allocate()).collect();
        pool.clear();
        pool.reset_stats();
        // Sequential scan twice: with only 4 frames over 16 pages every
        // access misses.
        for _ in 0..2 {
            for pid in &pids {
                pool.read(*pid, |_| ());
            }
        }
        assert_eq!(pool.stats().physical_reads, 32);
    }
}
