//! The injected fault matrix — the tentpole proof that the storage layer
//! survives a faulty disk.
//!
//! One scripted durable workload runs under a stratified schedule of
//! 40+ fault points covering **all five** [`FaultKind`]s at three sites:
//!
//! * **read site** — cold fetches through the buffer pool (transient
//!   retry, bit-flip read-repair, bad-sector quarantine, and their
//!   compositions);
//! * **flush site** — torn and dropped writes armed on the write-back
//!   ordinals of `flush_all`, detected by the seal catalog on the next
//!   cold read and repaired from WAL post-images;
//! * **recovery site** — a crash/recover/resume cycle whose recovered
//!   pool is then attacked by a seeded global-ordinal schedule plus a
//!   grown bad sector.
//!
//! The contract asserted throughout:
//!
//! 1. **No undetected corruption** — every successful read returns
//!    exactly the value the fault-free twin returns; a fault either
//!    repairs invisibly or surfaces as a typed [`IoFault`]. Never wrong
//!    bytes.
//! 2. **Determinism** — two identical runs produce identical outcome
//!    vectors, identical [`FaultStats`], and identical fired-fault
//!    traces ([`FaultInjector::trace`]).
//! 3. **Ledger discipline** — repair/retry traffic stays off the pool's
//!    [`IoStats`]; the only physical-read divergence from the twin is
//!    the surfaced errors (no frame inserted) and the quarantine hits
//!    (pinned frames served from memory).

use peb_storage::{
    recover, BufferPool, FaultEvent, FaultKind, FaultStats, IoFault, IoStats, PageId, Wal,
    PAGE_WORDS, TRANSIENT_RETRIES,
};

/// Pages in the scripted working set.
const PAGES: usize = 20;
/// Pages rewritten (and then torn/dropped at the flush site) in phase 2.
const REWRITTEN: [usize; 6] = [0, 1, 8, 9, 10, 11];

fn base_val(i: usize) -> u64 {
    0xA000 + (i as u64) * 31
}

fn v2_val(i: usize) -> u64 {
    0xB000 + (i as u64) * 17
}

/// Stamp a page so that both halves of the sector change: a torn write
/// (only the first half lands) is then physically distinguishable from
/// the intended image, which is what the seal catalog must catch.
fn stamp(pool: &BufferPool, pid: PageId, v: u64) {
    pool.write(pid, |p| {
        p.set_word(0, v);
        p.set_word(PAGE_WORDS - 1, v ^ 0x5A5A_5A5A);
    });
}

/// Expected content of page `i` once phase 2 committed.
fn expected_after_rewrite(i: usize) -> u64 {
    if REWRITTEN.contains(&i) {
        v2_val(i)
    } else {
        base_val(i)
    }
}

/// Everything one scripted run produces, for twin- and self-comparison.
#[derive(Debug, Clone, PartialEq)]
struct MatrixRun {
    /// Phase-1 cold reads (read-site faults fire here).
    pass1: Vec<Result<u64, IoFault>>,
    /// Phase-3 cold reads after the faulted flush (tears detected here).
    pass2: Vec<Result<u64, IoFault>>,
    /// Post-recovery cold reads (recovery-site faults fire here), two
    /// sweeps so the seeded window is fully traversed.
    pass3: Vec<Result<u64, IoFault>>,
    /// Fired faults on the primary pool, in firing order.
    trace1: Vec<FaultEvent>,
    /// Fired faults on the recovered pool, in firing order.
    trace2: Vec<FaultEvent>,
    stats1: FaultStats,
    stats2: FaultStats,
    io1: IoStats,
    quarantined: Vec<PageId>,
}

/// The scripted workload. `faulted` arms the matrix; `false` runs the
/// byte-identical fault-free twin.
fn run_matrix(faulted: bool) -> MatrixRun {
    let pool = BufferPool::new(32);
    pool.set_durable(true);
    let pids: Vec<PageId> = (0..PAGES).map(|_| pool.allocate()).collect();
    for (i, pid) in pids.iter().enumerate() {
        stamp(&pool, *pid, base_val(i));
    }
    pool.wal_commit(PAGES as u64);
    pool.flush_all();
    pool.clear();
    pool.reset_stats();

    // ---- read-site schedule (fires during pass 1's cold fetches) ----
    if faulted {
        pool.with_fault_injector(|f| {
            // Absorbed transients: 1, 2, and 3 consecutive failures.
            f.arm_read(Some(pids[0]), 0, FaultKind::TransientRead);
            for nth in 0..2 {
                f.arm_read(Some(pids[1]), nth, FaultKind::TransientRead);
            }
            for nth in 0..3 {
                f.arm_read(Some(pids[19]), nth, FaultKind::TransientRead);
            }
            // Exhausted transient: first attempt + every retry fails.
            for nth in 0..=u64::from(TRANSIENT_RETRIES) {
                f.arm_read(Some(pids[2]), nth, FaultKind::TransientRead);
            }
            // Bit rot, single-bit and burst: read-repaired from the WAL.
            f.arm_read(Some(pids[3]), 0, FaultKind::BitFlip { bits: 1 });
            f.arm_read(Some(pids[4]), 0, FaultKind::BitFlip { bits: 2 });
            f.arm_read(Some(pids[5]), 0, FaultKind::BitFlip { bits: 3 });
            f.arm_read(Some(pids[15]), 0, FaultKind::BitFlip { bits: 2 });
            f.arm_read(Some(pids[18]), 0, FaultKind::BitFlip { bits: 1 });
            // Grown defects: armed at an ordinal and pre-marked.
            f.arm_read(Some(pids[6]), 0, FaultKind::BadSector);
            f.arm_read(Some(pids[16]), 0, FaultKind::BadSector);
            f.mark_bad_sector(pids[7]);
            // Compositions: transient then rot on the retry; rot that
            // recurs on the first repair verify and heals on the second.
            f.arm_read(Some(pids[12]), 0, FaultKind::TransientRead);
            f.arm_read(Some(pids[12]), 1, FaultKind::BitFlip { bits: 1 });
            f.arm_read(Some(pids[13]), 0, FaultKind::BitFlip { bits: 1 });
            f.arm_read(Some(pids[13]), 1, FaultKind::BitFlip { bits: 1 });
            f.arm_read(Some(pids[14]), 0, FaultKind::TransientRead);
            f.arm_read(Some(pids[14]), 1, FaultKind::TransientRead);
            f.arm_read(Some(pids[17]), 0, FaultKind::TransientRead);
        });
    }

    // Pass 1: cold-read everything. Page 2's exhausted transient is the
    // one typed surface; everything else must read its exact base value.
    let pass1: Vec<Result<u64, IoFault>> =
        pids.iter().map(|pid| pool.try_read(*pid, |p| p.word(0))).collect();

    // Phase 2: rewrite a subset (resident frames, WAL post-images), then
    // arm the flush site. Per-pid write ordinal 1 is exactly the
    // write-back of this rewrite: ordinal 0 was the setup flush, and none
    // of the rewritten pages incurred repair writes in pass 1.
    for i in REWRITTEN {
        stamp(&pool, pids[i], v2_val(i));
    }
    pool.wal_commit(REWRITTEN.len() as u64);
    if faulted {
        pool.with_fault_injector(|f| {
            f.arm_write(Some(pids[0]), 1, FaultKind::TornWrite);
            f.arm_write(Some(pids[1]), 1, FaultKind::DroppedWrite);
            f.arm_write(Some(pids[8]), 1, FaultKind::TornWrite);
            f.arm_write(Some(pids[9]), 1, FaultKind::DroppedWrite);
            f.arm_write(Some(pids[10]), 1, FaultKind::TornWrite);
            f.arm_write(Some(pids[11]), 1, FaultKind::DroppedWrite);
        });
    }
    pool.flush_all();
    pool.clear();

    // Pass 2: every torn/dropped page is detected by the seal catalog on
    // its cold read and repaired to the committed v2 image; quarantined
    // pages are served from their pinned frames without touching disk.
    let pass2: Vec<Result<u64, IoFault>> =
        pids.iter().map(|pid| pool.try_read(*pid, |p| p.word(0))).collect();

    let (trace1, stats1, io1, quarantined) =
        (pool.with_fault_injector(|f| f.trace().to_vec()), pool.fault_stats(), pool.stats(), {
            let mut q = pool.quarantined_pages();
            q.sort_by_key(|p| p.0);
            q
        });

    // ---- recovery site: crash, replay the log, resume, attack again ----
    pool.wal_force();
    let (mut data, log) = pool.harvest_crash_state();
    let rec = recover(&mut data, &log);
    let wal = Wal::resume(log, &rec);
    let pool2 = BufferPool::from_recovered(32, 1, data, wal);
    // Recovery rewrote every committed page image, healing the medium;
    // drop the harvested injector's bad-sector set and trace so only the
    // recovery-site schedule below is observed.
    pool2.with_fault_injector(|f| f.clear());
    if faulted {
        pool2.with_fault_injector(|f| {
            f.mark_bad_sector(pids[2]);
            f.arm_seeded_read_schedule(0x5EED_FA01, 12, 24);
        });
    }
    let mut pass3: Vec<Result<u64, IoFault>> =
        pids.iter().map(|pid| pool2.try_read(*pid, |p| p.word(0))).collect();
    // Second cold sweep traverses the rest of the seeded window (and
    // re-reads anything that surfaced, proving the medium healed).
    pool2.clear();
    pass3.extend(pids.iter().map(|pid| pool2.try_read(*pid, |p| p.word(0))));

    MatrixRun {
        pass1,
        pass2,
        pass3,
        trace1,
        trace2: pool2.with_fault_injector(|f| f.trace().to_vec()),
        stats1,
        stats2: pool2.fault_stats(),
        io1,
        quarantined,
    }
}

/// Which distinct kinds (collapsing flip widths) appear in a trace.
fn kinds_covered(trace: &[FaultEvent]) -> Vec<&'static str> {
    let mut out = Vec::new();
    let seen = |name: &'static str, out: &mut Vec<&'static str>| {
        if !out.contains(&name) {
            out.push(name);
        }
    };
    for ev in trace {
        match ev.kind {
            FaultKind::TransientRead => seen("transient", &mut out),
            FaultKind::BadSector => seen("bad-sector", &mut out),
            FaultKind::BitFlip { .. } => seen("bit-flip", &mut out),
            FaultKind::TornWrite => seen("torn-write", &mut out),
            FaultKind::DroppedWrite => seen("dropped-write", &mut out),
        }
    }
    out
}

#[test]
fn forty_plus_stratified_points_fire_across_all_kinds_and_sites() {
    let run = run_matrix(true);

    // Coverage floor: the scripted read+flush schedule fires 31 points
    // (exactly — it is trace-asserted below) and the recovery-site
    // seeded schedule adds at least 9 more distinct ordinals.
    assert_eq!(run.trace1.len(), 30, "scripted schedule fired exactly as armed");
    let total = run.trace1.len() + run.trace2.len();
    assert!(
        total >= 40,
        "matrix must fire at least 40 points, got {total} ({} + {})",
        run.trace1.len(),
        run.trace2.len()
    );

    // All five kinds fire, and both access sides are represented.
    let mut kinds = kinds_covered(&run.trace1);
    for k in kinds_covered(&run.trace2) {
        if !kinds.contains(&k) {
            kinds.push(k);
        }
    }
    for kind in ["transient", "bad-sector", "bit-flip", "torn-write", "dropped-write"] {
        assert!(kinds.contains(&kind), "kind {kind} never fired");
    }
    assert!(run.trace1.iter().any(|e| !e.write), "read-site events present");
    assert!(run.trace1.iter().any(|e| e.write), "flush-site events present");
    assert!(!run.trace2.is_empty(), "recovery-site events present");

    // Zero undetected corruptions: every successful read is exact.
    for (i, r) in run.pass1.iter().enumerate() {
        if let Ok(v) = r {
            assert_eq!(*v, base_val(i), "pass 1 page {i} silently corrupt");
        }
    }
    for (i, r) in run.pass2.iter().enumerate() {
        assert_eq!(*r, Ok(expected_after_rewrite(i)), "pass 2 page {i}");
    }
    for (k, r) in run.pass3.iter().enumerate() {
        if let Ok(v) = r {
            assert_eq!(*v, expected_after_rewrite(k % PAGES), "pass 3 read {k} silently corrupt");
        }
    }
}

#[test]
fn the_matrix_is_deterministic_outcomes_stats_and_trace() {
    let a = run_matrix(true);
    let b = run_matrix(true);
    assert_eq!(a.pass1, b.pass1);
    assert_eq!(a.pass2, b.pass2);
    assert_eq!(a.pass3, b.pass3);
    assert_eq!(a.trace1, b.trace1, "primary-pool fired-fault traces diverge");
    assert_eq!(a.trace2, b.trace2, "recovered-pool fired-fault traces diverge");
    assert_eq!(a.stats1, b.stats1);
    assert_eq!(a.stats2, b.stats2);
    assert_eq!(a.io1, b.io1);
    assert_eq!(a.quarantined, b.quarantined);
}

#[test]
fn every_faulted_outcome_equals_the_twin_or_surfaces_typed() {
    let faulted = run_matrix(true);
    let twin = run_matrix(false);

    // The twin saw nothing: clean stats, empty traces, exact reads.
    assert_eq!(twin.stats1, FaultStats::default());
    assert_eq!(twin.stats2, FaultStats::default());
    assert!(twin.trace1.is_empty() && twin.trace2.is_empty());
    assert!(twin.quarantined.is_empty());
    assert!(twin.pass1.iter().chain(&twin.pass2).chain(&twin.pass3).all(Result::is_ok));

    // Faulted vs twin: element-wise equal, or a typed error — never a
    // third possibility (wrong bytes).
    let mut surfaced = 0usize;
    for (pass, (f, t)) in [
        (&faulted.pass1, &twin.pass1),
        (&faulted.pass2, &twin.pass2),
        (&faulted.pass3, &twin.pass3),
    ]
    .iter()
    .enumerate()
    .flat_map(|(p, (f, t))| f.iter().zip(t.iter()).map(move |pair| (p, pair)))
    {
        match f {
            Ok(_) => assert_eq!(f, t, "pass {pass}: repaired read diverged from the twin"),
            Err(e) => {
                surfaced += 1;
                // Typed, and attributable to a page in the working set.
                assert!((e.pid().0 as usize) < PAGES, "fault on a page outside the matrix: {e}");
            }
        }
    }
    // Pass 1 surfaces exactly the exhausted transient on page 2; pass 2
    // repairs everything; pass 3 may surface only what the seeded
    // schedule made unrepairable on its first sweep.
    assert_eq!(faulted.pass1.iter().filter(|r| r.is_err()).count(), 1);
    assert_eq!(faulted.pass1[2], Err(IoFault::Transient { pid: PageId(2) }));
    assert!(faulted.pass2.iter().all(Result::is_ok));
    assert!(surfaced >= 1);

    // Ledger discipline: logical traffic is identical; the only physical
    // read divergence is surfaced fetches (no frame inserted) plus
    // quarantine hits (pinned frames served from memory, twin re-reads).
    assert_eq!(faulted.io1.logical_reads, twin.io1.logical_reads);
    assert_eq!(faulted.io1.physical_writes, twin.io1.physical_writes);
    let divergence = faulted.stats1.surfaced_errors + faulted.stats1.quarantines;
    assert_eq!(faulted.io1.physical_reads + divergence, twin.io1.physical_reads);
}

#[test]
fn the_fault_ledger_accounts_for_every_armed_point() {
    let run = run_matrix(true);
    let s = &run.stats1;

    // Transients: pages 0 (1), 1 (2), 2 (3 retries then exhaustion),
    // 12 (1), 14 (2), 17 (1), 19 (3) — all retried with backoff.
    assert_eq!(s.transient_retries, 13);
    assert_eq!(s.transient_exhausted, 1);
    assert_eq!(s.surfaced_errors, 1, "only page 2's exhaustion surfaced");
    assert!(s.backoff_ticks > 0);

    // Corruption detections: 7 read-site flips (pages 3, 4, 5, 12, 13,
    // 15, 18) + 6 flush-site tears/drops detected in pass 2.
    assert_eq!(s.checksum_mismatches, 13);
    // Bad sectors: pages 6, 16 (armed) and 7 (pre-marked).
    assert_eq!(s.bad_sector_reads, 3);

    // Repairs: every detection was attempted; the three bad sectors can
    // never re-verify and become quarantines, the rest succeed.
    assert_eq!(s.repairs_attempted, 16);
    assert_eq!(s.repairs_succeeded, 13);
    assert_eq!(s.quarantines, 3);
    assert_eq!(run.quarantined, vec![PageId(6), PageId(7), PageId(16)]);
    // Page 13's rot recurred on the first verify: one extra round.
    assert_eq!(s.repair_writes, s.repair_reads);
    assert_eq!(s.repair_writes, 13 + 1 + 3 * 2);

    // The recovered pool starts a fresh ledger and repairs or absorbs
    // everything its seeded schedule throws plus the grown bad sector.
    // At least page 2's grown defect; the seeded schedule's BadSector
    // points add their own (all deterministic, see the determinism test).
    assert!(run.stats2.quarantines >= 1, "page 2's grown defect quarantined after recovery");
    assert_eq!(run.stats2.repairs_attempted, run.stats2.repairs_succeeded + run.stats2.quarantines);
}

/// Long-haul seeded soak: several seeds, a bigger working set, and a
/// read/write churn under a dense global-ordinal schedule. Run with
/// `cargo test -- --ignored` (CI has a dedicated lane).
#[test]
#[ignore = "fault soak: minutes of churn, run explicitly or in the soak lane"]
fn seeded_fault_soak_never_corrupts_and_stays_deterministic() {
    fn soak(seed: u64) -> (Vec<Result<u64, IoFault>>, Vec<FaultEvent>, FaultStats) {
        const N: usize = 64;
        let pool = BufferPool::new(24); // smaller than the set: evictions churn
        pool.set_durable(true);
        let pids: Vec<PageId> = (0..N).map(|_| pool.allocate()).collect();
        let mut content: Vec<u64> = (0..N as u64).map(|i| seed ^ (i * 0x9E37)).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u64(0, content[i]));
        }
        pool.wal_commit(N as u64);
        pool.flush_all();
        pool.clear();
        pool.with_fault_injector(|f| f.arm_seeded_read_schedule(seed, 96, 1600));

        // Deterministic pseudo-random access pattern (no external RNG).
        let mut x = seed | 1;
        let mut step = || {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            x >> 33
        };
        let mut outcomes = Vec::with_capacity(2048);
        for round in 0..2048u64 {
            let i = (step() as usize) % N;
            if round % 5 == 4 {
                // Writes keep the WAL image fresh and heal flipped media.
                content[i] = content[i].wrapping_add(round);
                if pool.try_write(pids[i], |p| p.put_u64(0, content[i])).is_ok() {
                    pool.wal_commit(1);
                }
            } else {
                let got = pool.try_read(pids[i], |p| p.get_u64(0));
                if let Ok(v) = got {
                    assert_eq!(v, content[i], "undetected corruption on page {i} (seed {seed:#x})");
                }
                outcomes.push(got);
            }
            if round % 257 == 256 {
                pool.flush_all();
            }
        }
        (outcomes, pool.with_fault_injector(|f| f.trace().to_vec()), pool.fault_stats())
    }

    for seed in [0x0ACE_u64, 0xB0A7, 0xC4A5, 0xD00D] {
        let (o1, t1, s1) = soak(seed);
        let (o2, t2, s2) = soak(seed);
        assert_eq!(o1, o2, "seed {seed:#x}: outcome sequences diverge");
        assert_eq!(t1, t2, "seed {seed:#x}: fired traces diverge");
        assert_eq!(s1, s2, "seed {seed:#x}: fault ledgers diverge");
        assert!(t1.len() >= 24, "seed {seed:#x}: schedule too sparse ({} fired)", t1.len());
        assert_eq!(s1.repairs_attempted, s1.repairs_succeeded + s1.quarantines);
    }
}
