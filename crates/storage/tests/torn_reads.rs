//! Torn-read safety of the versioned-page optimistic read path.
//!
//! The seqlock contract under test: an optimistic reader either gets a
//! **whole, consistent** page image (validated before use) or no image at
//! all — never a mix of two versions — while writers and evictions churn
//! the very pages it reads. Writers stamp every word of a page with the
//! same value, so a single mixed-version image is detectable from any
//! one snapshot.
//!
//! These tests are also compiled and run in `--release` by CI: the
//! interesting interleavings (and any fence that only "works" because
//! debug codegen is slow) surface under the optimizer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use peb_storage::{BufferPool, PageId, PAGE_WORDS};

/// Every word of the page gets `stamp`; readers assert uniformity.
fn stamp_page(pool: &BufferPool, pid: PageId, stamp: u64) {
    pool.write(pid, |p| {
        for i in 0..PAGE_WORDS {
            p.set_word(i, stamp);
        }
    });
}

/// Assert a snapshot is single-stamped, returning the stamp.
fn uniform_stamp(words: &[u64]) -> u64 {
    let first = words[0];
    for (i, w) in words.iter().enumerate() {
        assert_eq!(*w, first, "torn page image: word {i} is {w:#x}, word 0 is {first:#x}");
    }
    first
}

#[test]
fn optimistic_readers_never_observe_torn_pages() {
    // 2 writers re-stamping 4 shared pages + 4 readers validating every
    // snapshot, on a pool large enough that the pages stay resident (the
    // race under test is reader-vs-writer, not eviction).
    let pool = Arc::new(BufferPool::with_shards(16, 2));
    let pids: Vec<PageId> = (0..4).map(|_| pool.allocate()).collect();
    for (i, pid) in pids.iter().enumerate() {
        stamp_page(&pool, *pid, i as u64 + 1);
    }
    let stop = AtomicBool::new(false);
    let hits = AtomicU64::new(0);

    std::thread::scope(|s| {
        for w in 0..2u64 {
            let pool = Arc::clone(&pool);
            let (stop, pids) = (&stop, &pids);
            s.spawn(move || {
                let mut stamp = 1_000 * (w + 1);
                while !stop.load(Ordering::Relaxed) {
                    for pid in pids {
                        stamp_page(&pool, *pid, stamp);
                        stamp += 1;
                    }
                }
            });
        }
        for r in 0..4usize {
            let pool = Arc::clone(&pool);
            let (stop, pids, hits) = (&stop, &pids, &hits);
            s.spawn(move || {
                let mut local_hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let pid = pids[r % pids.len()];
                    let snapshot = pool.try_read_optimistic(pid, |p| {
                        (0..PAGE_WORDS).map(|i| p.word(i)).collect::<Vec<u64>>()
                    });
                    if let Some(words) = snapshot {
                        uniform_stamp(&words);
                        local_hits += 1;
                    }
                }
                hits.fetch_add(local_hits, Ordering::Relaxed);
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });

    assert!(hits.load(Ordering::Relaxed) > 0, "the race never exercised the optimistic path");
    let locks = pool.lock_stats();
    assert!(locks.optimistic_hits > 0);
}

#[test]
fn optimistic_readers_race_evictions_safely() {
    // A tiny pool (2 frames per shard) with a working set 8x larger:
    // every writer touch evicts something, so readers constantly race
    // publish/invalidate cycles, not just in-place rewrites. Snapshots
    // must still be uniform and carry a stamp the page actually had.
    let pool = Arc::new(BufferPool::with_shards(4, 2));
    let pids: Vec<PageId> = (0..32).map(|_| pool.allocate()).collect();
    for pid in &pids {
        stamp_page(&pool, *pid, 7);
    }
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        {
            let pool = Arc::clone(&pool);
            let (stop, pids) = (&stop, &pids);
            s.spawn(move || {
                let mut stamp = 10_000u64;
                while !stop.load(Ordering::Relaxed) {
                    for pid in pids {
                        stamp_page(&pool, *pid, stamp);
                    }
                    stamp += 1;
                }
            });
        }
        for _ in 0..3 {
            let pool = Arc::clone(&pool);
            let (stop, pids) = (&stop, &pids);
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let pid = pids[i % pids.len()];
                    i += 1;
                    if let Some(words) = pool.try_read_optimistic(pid, |p| {
                        (0..PAGE_WORDS).map(|k| p.word(k)).collect::<Vec<u64>>()
                    }) {
                        let stamp = uniform_stamp(&words);
                        assert!(stamp == 7 || stamp >= 10_000, "stamp {stamp} never written");
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
    });
    // Liveness after the churn: every page is still readable and intact.
    for pid in &pids {
        let words = pool.read(*pid, |p| (0..PAGE_WORDS).map(|i| p.word(i)).collect::<Vec<u64>>());
        uniform_stamp(&words);
    }
}

#[test]
fn clear_under_concurrent_readers_never_poisons_slots() {
    // The bugfix-sweep regression: clear()/reset_stats() racing
    // optimistic readers must leave every slot at an even version —
    // afterwards (quiesced) the optimistic path works for every page.
    let pool = Arc::new(BufferPool::with_shards(8, 2));
    let pids: Vec<PageId> = (0..8).map(|_| pool.allocate()).collect();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        for _ in 0..2 {
            let pool = Arc::clone(&pool);
            let (stop, pids) = (&stop, &pids);
            s.spawn(move || {
                let mut i = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    let _ = pool.try_read_optimistic(pids[i % pids.len()], |p| p.get_u64(0));
                    i += 1;
                }
            });
        }
        {
            let pool = Arc::clone(&pool);
            let (stop, pids) = (&stop, &pids);
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    pool.clear();
                    pool.reset_stats();
                    for pid in pids {
                        pool.read(*pid, |_| ()); // fault back in, republish
                    }
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(300));
        stop.store(true, Ordering::Relaxed);
    });

    // Quiesced: every resident page must be optimistically readable again
    // after one locked touch (which republishes it if needed).
    pool.clear();
    pool.reset_stats();
    for pid in &pids {
        pool.read(*pid, |_| ());
        assert!(
            pool.try_read_optimistic(*pid, |_| ()).is_some(),
            "slot for {pid:?} stayed poisoned after clear/reset_stats"
        );
    }
}
