//! Property tests for the per-page FNV-1a seal: sealing is deterministic
//! and content-only, and **any** corruption of the sealed bytes — a
//! single flipped bit at any byte offset, a multi-byte burst, a torn
//! write's half-old sector, a dropped write's stale sector — fails
//! verification. This is the detection layer everything else in the
//! fault-tolerance chapter (retry, read-repair, quarantine) stands on.

use peb_storage::{DiskSim, FaultKind, IoFault, Page, PAGE_SIZE, PAGE_WORDS};
use proptest::prelude::*;

/// A page with deterministic non-trivial content derived from `seed`.
fn filled(seed: u64) -> Page {
    let mut p = Page::new();
    for i in 0..PAGE_WORDS {
        p.set_word(i, (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed);
    }
    p
}

/// The exhaustive sweep: flip one bit at **every** byte offset of the
/// sealed content and demand detection each time. Deterministic and
/// exhaustive on purpose — proptest covers the randomized space below.
#[test]
fn a_flip_at_every_single_byte_offset_is_detected() {
    let page = filled(0xA5A5_0001);
    let seal = page.seal();
    assert!(page.verify(seal));
    for off in 0..PAGE_SIZE {
        let mut corrupt = page.clone();
        corrupt.bytes_mut(off, 1)[0] ^= 1 << (off % 8);
        assert!(!corrupt.verify(seal), "flip at byte {off} went undetected");
        assert!(corrupt.verify(corrupt.seal()), "re-seal of the corrupt page must round-trip");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Seal/verify round-trip: the seal is a pure function of content.
    #[test]
    fn sealing_is_deterministic_and_content_only(
        words in proptest::collection::vec((0usize..PAGE_WORDS, any::<u64>()), 0..40),
    ) {
        let mut a = Page::new();
        let mut b = Page::new();
        for &(i, w) in &words {
            a.set_word(i, w);
            b.set_word(i, w);
        }
        let seal = a.seal();
        prop_assert_eq!(seal, b.seal(), "identical content, identical seal");
        prop_assert!(a.verify(seal) && b.verify(seal));
    }

    /// Any burst of byte corruptions (at least one effective flip) is
    /// caught by the seal taken before the corruption.
    #[test]
    fn multi_byte_bursts_are_detected(
        seed in any::<u64>(),
        burst in proptest::collection::vec((0usize..PAGE_SIZE, 1u8..=255), 1..24),
    ) {
        let page = filled(seed);
        let seal = page.seal();
        let mut corrupt = page.clone();
        for &(off, mask) in &burst {
            corrupt.bytes_mut(off, 1)[0] ^= mask;
        }
        // Overlapping offsets can cancel each other out; only demand
        // detection when the content actually changed.
        if corrupt.bytes(0, PAGE_SIZE) != page.bytes(0, PAGE_SIZE) {
            prop_assert!(!corrupt.verify(seal), "burst {burst:?} went undetected");
        } else {
            prop_assert!(corrupt.verify(seal));
        }
    }

    /// A torn write (first half of the new image, tail of the old) never
    /// verifies against the new image's seal when the tail differs.
    #[test]
    fn torn_writes_are_detected(old_seed in any::<u64>(), new_seed in any::<u64>()) {
        let new_seed = if old_seed == new_seed { new_seed ^ 1 } else { new_seed };
        let old = filled(old_seed);
        let new = filled(new_seed);
        let seal = new.seal();
        let mut torn = old.clone();
        torn.bytes_mut(0, PAGE_SIZE / 2).copy_from_slice(new.bytes(0, PAGE_SIZE / 2));
        prop_assert!(!torn.verify(seal), "torn sector verified against the intended seal");
    }

    /// A dropped write (stale sector, updated seal catalog) never
    /// verifies: the old content fails the new seal.
    #[test]
    fn dropped_writes_are_detected(old_seed in any::<u64>(), new_seed in any::<u64>()) {
        let new_seed = if old_seed == new_seed { new_seed ^ 1 } else { new_seed };
        let old = filled(old_seed);
        let new = filled(new_seed);
        prop_assert!(!old.verify(new.seal()), "stale sector verified against the intended seal");
    }

    /// End to end through the device: an injected flip burst surfaces as
    /// a typed checksum mismatch naming both seals, and rewriting the
    /// page heals the medium.
    #[test]
    fn disk_flips_surface_typed_and_rewrites_heal(
        seed in any::<u64>(),
        bits in 1u8..=4,
    ) {
        let mut disk = DiskSim::new();
        let pid = disk.allocate();
        let page = filled(seed);
        disk.write(pid, &page);
        disk.faults_mut().set_seed(seed ^ 0x0BAD_5EED);
        disk.faults_mut().arm_read(Some(pid), 1, FaultKind::BitFlip { bits });
        prop_assert_eq!(disk.read(pid).expect("clean first read").seal(), page.seal());
        match disk.read(pid) {
            Err(IoFault::Corrupt { pid: p, expected, found }) => {
                prop_assert_eq!(p, pid);
                prop_assert_eq!(expected, page.seal());
                prop_assert_ne!(found, expected);
            }
            other => prop_assert!(false, "expected a typed mismatch, got {other:?}"),
        }
        // The flip persists on the medium until something rewrites it…
        prop_assert!(matches!(disk.read(pid), Err(IoFault::Corrupt { .. })));
        // …and a rewrite heals it.
        disk.write(pid, &page);
        prop_assert_eq!(disk.read(pid).expect("healed").seal(), page.seal());
    }
}
