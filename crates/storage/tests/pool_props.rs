//! Property tests for the sharded buffer pool: residency never exceeds
//! the configured total capacity, and `stats()` is exactly the sum of the
//! per-shard counters — including under interleaved concurrent readers.

use std::sync::Arc;

use peb_storage::{BufferPool, IoStats, PageId};
use proptest::prelude::*;

fn summed(pool: &BufferPool) -> IoStats {
    pool.shard_stats().iter().fold(IoStats::default(), |acc, s| acc.merged(s))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn eviction_never_exceeds_total_capacity(
        cap in 1usize..24,
        shards in 1usize..9,
        ops in proptest::collection::vec((0u32..48, any::<bool>()), 1..150),
    ) {
        let pool = BufferPool::with_shards(cap, shards);
        prop_assert_eq!(
            pool.shard_capacities().iter().sum::<usize>(),
            cap,
            "remainder rule must preserve the total budget"
        );
        let pids: Vec<PageId> = (0..48).map(|_| pool.allocate()).collect();
        prop_assert!(pool.resident_pages() <= cap);
        for &(i, write) in &ops {
            let pid = pids[i as usize];
            if write {
                pool.write(pid, |p| p.put_u32(0, i));
            } else {
                pool.read(pid, |_| ());
            }
            prop_assert!(
                pool.resident_pages() <= cap,
                "residency {} exceeded capacity {}",
                pool.resident_pages(),
                cap
            );
        }
        prop_assert_eq!(pool.stats(), summed(&pool));
        let total = pool.stats();
        prop_assert_eq!(total.logical_reads, ops.len() as u64);
        // Writes only happen on dirty eviction/flush/clear; every miss is
        // one physical read, so the ledger stays internally consistent.
        prop_assert!(total.physical_reads <= total.logical_reads);
    }

    #[test]
    fn stats_sum_exactly_under_interleaved_readers(
        shards in 1usize..9,
        reads_per_thread in 50usize..200,
    ) {
        let pool = Arc::new(BufferPool::with_shards(16, shards));
        let pids: Vec<PageId> = (0..64).map(|_| pool.allocate()).collect();
        for (i, pid) in pids.iter().enumerate() {
            pool.write(*pid, |p| p.put_u64(0, i as u64));
        }
        pool.clear();
        pool.reset_stats();

        let threads = 4usize;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let pool = Arc::clone(&pool);
                let pids = pids.clone();
                std::thread::spawn(move || {
                    for j in 0..reads_per_thread {
                        let idx = (t * 17 + j * 7) % pids.len();
                        let v = pool.read(pids[idx], |p| p.get_u64(0));
                        assert_eq!(v, idx as u64, "page content must survive eviction races");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("reader thread panicked");
        }

        prop_assert!(pool.resident_pages() <= pool.capacity());
        let total = pool.stats();
        prop_assert_eq!(total, summed(&pool));
        // Every read increments exactly one shard's counter under its
        // lock, so the aggregate is exact even though the readers raced.
        prop_assert_eq!(total.logical_reads, (threads * reads_per_thread) as u64);
        prop_assert!(total.physical_reads >= 1, "cold pool must miss at least once");
    }
}
