//! Property tests for the write-ahead log: record codec round-trips,
//! recovery is idempotent (replaying the log twice leaves the data disk
//! and every ledger exactly where one replay left them), and a torn tail
//! truncated at **every** byte offset of the last record is detected,
//! never panics, and always recovers to the last complete record.

use peb_storage::{recover, DiskSim, Page, PageId, Wal, WalRecord, PAGE_SIZE};
use proptest::prelude::*;

/// A page image with recognizable content: `fill` everywhere plus a
/// counter stripe so two images with different fills never collide.
fn image(fill: u8) -> Box<Page> {
    let mut p = Box::new(Page::new());
    p.bytes_mut(0, PAGE_SIZE).fill(fill);
    for i in 0..16 {
        p.bytes_mut(i * 8, 1)[0] = fill.wrapping_add(i as u8);
    }
    p
}

/// Script step for building an arbitrary — but structurally valid — log.
/// `Ckpt` expands to a `CkptBegin`/`CkptEnd` pair with a correct
/// `begin_seq` backlink, like the pool's checkpoint writes it.
#[derive(Debug, Clone)]
enum Op {
    Alloc(u8),
    Write(u8, u8),
    Chain(u8, u8),
    Pre(u8, u8),
    Meta(u8, u8, u8),
    Rekey(u8, u64, u64),
    Commit,
    Ckpt,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..12).prop_map(Op::Alloc),
        (0u8..12, any::<u8>()).prop_map(|(p, f)| Op::Write(p, f)),
        (0u8..12, any::<u8>()).prop_map(|(p, f)| Op::Chain(p, f)),
        (0u8..12, any::<u8>()).prop_map(|(p, f)| Op::Pre(p, f)),
        (0u8..4, 0u8..12, 1u8..4).prop_map(|(t, r, h)| Op::Meta(t, r, h)),
        (0u8..4, any::<u64>(), any::<u64>()).prop_map(|(t, o, n)| Op::Rekey(t, o, n)),
        Just(Op::Commit),
        Just(Op::Ckpt),
    ]
}

/// Expand a script into concrete records, numbering commits cumulatively
/// and wiring each `CkptEnd` to its `CkptBegin`'s sequence number.
fn build_records(ops: &[Op]) -> Vec<WalRecord> {
    let mut recs = Vec::new();
    let mut committed = 0u64;
    for op in ops {
        match op {
            Op::Alloc(p) => recs.push(WalRecord::Alloc { pid: PageId(*p as u32) }),
            Op::Write(p, f) => {
                recs.push(WalRecord::PageWrite { pid: PageId(*p as u32), image: image(*f) })
            }
            Op::Chain(p, f) => {
                recs.push(WalRecord::ChainWrite { pid: PageId(*p as u32), image: image(*f) })
            }
            Op::Pre(p, f) => {
                recs.push(WalRecord::PreImage { pid: PageId(*p as u32), image: image(*f) })
            }
            Op::Meta(t, r, h) => recs.push(WalRecord::TreeMeta {
                tree: *t as u32,
                root: PageId(*r as u32),
                height: *h as u32,
            }),
            Op::Rekey(t, o, n) => {
                recs.push(WalRecord::Rekey { tree: *t as u32, old: *o as u128, new: *n as u128 })
            }
            Op::Commit => {
                committed += 1;
                recs.push(WalRecord::Commit { ops: committed });
            }
            Op::Ckpt => {
                let begin_seq = recs.len() as u64 + 1;
                recs.push(WalRecord::CkptBegin);
                recs.push(WalRecord::CkptEnd { begin_seq });
            }
        }
    }
    recs
}

/// Encode `records` as the byte stream a flushed log holds, with each
/// record's stride alongside. Sequence numbers run 1, 2, 3, … exactly as
/// [`Wal::append`] assigns them.
fn encode_all(records: &[WalRecord]) -> (Vec<u8>, Vec<usize>) {
    let mut stream = Vec::new();
    let mut strides = Vec::new();
    for (i, rec) in records.iter().enumerate() {
        strides.push(rec.encode_into(i as u64 + 1, &mut stream));
    }
    (stream, strides)
}

/// Materialize a byte stream onto a fresh simulated log disk (trailing
/// bytes of the last page stay zero — the clean end-of-stream marker).
fn disk_from_stream(bytes: &[u8]) -> DiskSim {
    let mut d = DiskSim::new();
    let pages = bytes.len().div_ceil(PAGE_SIZE).max(1);
    for p in 0..pages {
        let pid = d.allocate();
        let start = p * PAGE_SIZE;
        if start < bytes.len() {
            let n = (bytes.len() - start).min(PAGE_SIZE);
            let mut page = Page::new();
            page.bytes_mut(0, n).copy_from_slice(&bytes[start..start + n]);
            d.write(pid, &page);
        }
    }
    d
}

/// A data disk whose pages hold arbitrary junk — the "dirty-frame steal"
/// state recovery must be able to overwrite.
fn junk_data_disk(pages: usize) -> DiskSim {
    let mut d = DiskSim::new();
    for p in 0..pages {
        let pid = d.allocate();
        d.write(pid, &image(0xC0u8.wrapping_add(p as u8)));
    }
    d
}

fn disks_equal(a: &DiskSim, b: &DiskSim) -> bool {
    a.num_pages() == b.num_pages()
        && (0..a.num_pages()).all(|p| {
            let pid = PageId(p as u32);
            a.peek(pid).unwrap().bytes(0, PAGE_SIZE) == b.peek(pid).unwrap().bytes(0, PAGE_SIZE)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Codec round-trip: decode inverts encode for every record variant,
    /// and re-encoding the decoded record reproduces the bytes exactly.
    #[test]
    fn record_roundtrip(ops in proptest::collection::vec(op_strategy(), 1..20), seq in 1u64..u64::MAX) {
        for rec in build_records(&ops) {
            let bytes = rec.encode(seq);
            let (back, got_seq, stride) = WalRecord::decode(&bytes)
                .expect("freshly encoded record must decode");
            prop_assert_eq!(got_seq, seq);
            prop_assert_eq!(stride, bytes.len());
            prop_assert_eq!(back.encode(seq), bytes, "decode must invert encode");
            // One byte short must never decode (prefix of a torn write).
            prop_assert!(WalRecord::decode(&bytes[..bytes.len() - 1]).is_none());
        }
    }

    /// Replaying the same log twice leaves the data disk byte-identical
    /// to replaying it once, and every recovery ledger reads the same.
    #[test]
    fn replay_is_idempotent(ops in proptest::collection::vec(op_strategy(), 1..40)) {
        let records = build_records(&ops);
        let (stream, _) = encode_all(&records);
        let log = disk_from_stream(&stream);

        let mut once = junk_data_disk(12);
        let a = recover(&mut once, &log);
        let mut twice = once.clone();
        let b = recover(&mut twice, &log);

        prop_assert!(disks_equal(&once, &twice), "second replay moved the data disk");
        prop_assert_eq!(a.commits, b.commits);
        prop_assert_eq!(a.last_commit_seq, b.last_commit_seq);
        prop_assert_eq!(a.checkpoint_seq, b.checkpoint_seq);
        prop_assert_eq!(a.tree_meta, b.tree_meta);
        prop_assert_eq!(a.rekeys_noted, b.rekeys_noted);
        prop_assert_eq!(a.records_scanned, b.records_scanned);
        prop_assert_eq!(a.records_replayed, b.records_replayed);
        prop_assert_eq!(a.preimages_applied, b.preimages_applied);
        prop_assert_eq!(a.data_writes, b.data_writes, "replay I/O must be reproducible");
        prop_assert_eq!(a.torn_tail, b.torn_tail);
        prop_assert_eq!(a.valid_bytes, b.valid_bytes);
        prop_assert_eq!(a.next_seq, b.next_seq);
        prop_assert!(!a.torn_tail, "a fully flushed log has no torn tail");
        prop_assert_eq!(a.records_scanned, records.len() as u64);
    }

    /// Cut the log inside its last record at **every** byte offset: the
    /// scan must stop at the last complete record (flagging the tear for
    /// any non-empty remainder), never panic, and [`Wal::resume`] must
    /// zero the tail so the log appends cleanly afterwards.
    #[test]
    fn torn_tail_detected_at_every_byte_offset(ops in proptest::collection::vec(op_strategy(), 1..12)) {
        let records = build_records(&ops);
        let (stream, strides) = encode_all(&records);
        let last_stride = *strides.last().unwrap();
        let whole = stream.len();

        for cut in (whole - last_stride)..=whole {
            let log = disk_from_stream(&stream[..cut]);
            let mut data = junk_data_disk(12);
            let rec = recover(&mut data, &log);

            let complete = if cut == whole { records.len() } else { records.len() - 1 };
            prop_assert_eq!(
                rec.records_scanned,
                complete as u64,
                "cut at {} must keep exactly the complete records",
                cut
            );
            prop_assert_eq!(rec.valid_bytes as usize, whole - last_stride + if cut == whole { last_stride } else { 0 });
            // A record prefix starts with the nonzero magic byte, so any
            // partial remainder is detected; a cut on the record boundary
            // is a clean end.
            prop_assert_eq!(rec.torn_tail, cut != whole && cut > whole - last_stride);
            prop_assert_eq!(rec.next_seq, complete as u64 + 1);

            // The resumed log must have zeroed the torn bytes: append a
            // fresh record, flush, and recover again — no tear, one more
            // record.
            let mut wal = Wal::resume(log, &rec);
            wal.append(&WalRecord::Commit { ops: u64::MAX });
            wal.flush(&mut || {});
            let mut data2 = junk_data_disk(12);
            let rec2 = recover(&mut data2, &wal.disk().clone());
            prop_assert!(!rec2.torn_tail, "resume left torn bytes in the log");
            prop_assert_eq!(rec2.records_scanned, complete as u64 + 1);
            prop_assert_eq!(rec2.commits, u64::MAX);
        }
    }
}
